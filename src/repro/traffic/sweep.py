"""Scenario sweep engine: policy × rate × fleet × discipline × bound ×
governor × thermal grids.

One fleet run answers one question; the interesting questions — how much
fleet does a target SLO need, which dispatch policy wins under overload,
how much admission control buys at the tail, how tight a shared power
budget can be before the tail pays — are surfaces over a grid of
scenarios.  :func:`run_sweep` fans a grid of (policy, arrival rate, fleet
size, dispatch discipline, queue bound, governor) cells across worker
processes with :mod:`multiprocessing`, seeding each cell deterministically
from the sweep's base seed and the cell's position, so the full sweep is
reproducible and bit-identical whether it runs serially or on any number
of workers.

The ``disciplines`` axis selects the dispatch mode per cell:
``"immediate"`` runs the cell's policy at arrival (the legacy loop), while
``"fifo"`` and ``"edf"`` run the central-queue engine under that queue
discipline (the policy axis is not consulted there).  The ``queue_bounds``
axis only affects central-queue cells; immediate cells repeat unchanged
along it.  The ``governors`` axis applies a fleet power budget
(:class:`~repro.traffic.governor.GovernorSpec`) per cell; the request
stream does not depend on it, so governor comparisons are paired like
every other non-rate axis.  The ``thermals`` axis selects the pacing
fidelity (:class:`~repro.core.thermal_backend.ThermalSpec`: linear
rule-of-thumb, RC cooling, or PCM enthalpy) per cell — also paired, so a
sweep can answer "how much tail latency does the coarse reservoir hide?"
directly.  Redundant cells collapse: duplicate thermal specs keep their
first occurrence, and a sprint-disabled sweep keeps only the first
backend (a fleet that never sprints deposits no heat, so every backend
agrees).

Scenario knobs beyond the grid live in :class:`SweepSpec`: the arrival
process family (Poisson, bursty on-off, diurnal, or deterministic — all
parameterised by the cell's mean rate), the service-demand distribution,
an optional per-request deadline, the sprint speedup, and whether
sprinting is enabled at all (for paired sprint/no-sprint comparisons).

A :attr:`SweepSpec.topologies` axis puts hierarchical fleets
(:class:`~repro.traffic.topology.TopologySpec`) on the grid next to flat
ones; topology cells take their size and budgets from the spec, so the
``fleet_sizes`` and ``governors`` axes collapse to their first value for
those cells.

Usage — the grid is the cross product of the axes:

>>> from repro.traffic.sweep import SweepSpec, expand_cells
>>> spec = SweepSpec(
...     policies=("round_robin",),
...     arrival_rates_hz=(0.1, 0.2),
...     fleet_sizes=(2,),
... )
>>> len(expand_cells(spec))
2
"""

from __future__ import annotations

import itertools
import multiprocessing
from dataclasses import dataclass, replace

import numpy as np

from repro.core.config import SystemConfig
from repro.core.thermal_backend import ThermalSpec
from repro.traffic.arrivals import (
    ArrivalProcess,
    DeterministicArrivals,
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
)
from repro.traffic.arrivals import seed_stream
from repro.traffic.engine import EXECUTION_MODES, QUEUE_DISCIPLINES
from repro.traffic.fleet import DISPATCH_POLICIES, FleetSimulator, resolve_telemetry
from repro.traffic.governor import GovernorSpec
from repro.traffic.metrics import MetricEstimate, TrafficSummary, mean_ci
from repro.traffic.request import FixedService, GammaService, generate_requests
from repro.traffic.telemetry import RunTelemetry, TelemetrySpec, TrafficTelemetry
from repro.traffic.topology import TopologySpec

#: Arrival families the sweep can instantiate from a cell's mean rate.
ARRIVAL_KINDS = ("poisson", "bursty", "diurnal", "deterministic")

#: Values of the discipline axis: immediate dispatch, a central-queue
#: discipline from :data:`repro.traffic.engine.QUEUE_DISCIPLINES`, or the
#: calibrated fluid limit (``"fluid"`` — deterministic mean-field cells,
#: accuracy per :data:`repro.traffic.fluid.FLUID_ACCURACY_CONTRACT`; the
#: policy, bound, and governor axes do not apply and collapse).
SWEEP_DISCIPLINES = ("immediate",) + QUEUE_DISCIPLINES + ("fluid",)

#: Replication seeding modes: ``"crn"`` (common random numbers — every
#: cell at the same arrival rate replays the same request stream per
#: replication, so comparisons along all non-rate axes stay paired) or
#: ``"independent"`` (each cell draws its own streams — the noisy
#: classical design, kept so the variance reduction can be measured).
PAIRING_MODES = ("crn", "independent")


def pool_map(fn, jobs, workers: int) -> list:
    """Map ``fn`` over ``jobs``, optionally fanned across worker processes.

    The shared fan-out primitive of the traffic stack: :func:`run_sweep`
    spreads grid cells through it and
    :func:`repro.traffic.experiments.run_replications` spreads replication
    jobs.  ``workers=1`` (or a single job) runs serially in-process;
    results always come back in job order, so callers are bit-identical
    for any worker count provided ``fn`` is deterministic per job.
    """
    if workers < 1:
        raise ValueError("worker count must be at least 1")
    jobs = list(jobs)
    if workers == 1 or len(jobs) <= 1:
        return [fn(job) for job in jobs]
    with multiprocessing.Pool(processes=min(workers, len(jobs))) as pool:
        return pool.map(fn, jobs)


@dataclass(frozen=True)
class SweepSpec:
    """The grid and the scenario shared by every cell.

    ``burst_factor`` and ``burst_mean_requests`` only matter for the
    ``bursty`` arrival kind: bursts run at ``burst_factor`` times the
    cell's mean rate, are sized so a burst carries ``burst_mean_requests``
    expected requests, and are spaced so the long-run mean rate is
    preserved.  ``diurnal_amplitude`` and ``diurnal_period_s`` only apply
    to ``diurnal``.  ``service_cv = 0`` gives fixed-size requests.
    ``deadline_s`` attaches the same relative latency budget to every
    request (central-queue cells then abandon requests that miss it before
    starting; every cell reports completion-past-deadline misses).

    ``replications`` runs every cell that many times under distinct
    replication seed streams and reports all replicate summaries on its
    :class:`CellResult` (confidence intervals via
    :meth:`CellResult.estimate`).  ``pairing`` selects the replication
    seeding: ``"crn"`` (default) keeps cells at the same arrival rate on
    common request streams per replication — paired comparisons along
    every non-rate axis, with replication 0 replaying the legacy stream
    so a default sweep is bit-identical to the pre-replication engine —
    while ``"independent"`` keys every replication of every cell by its
    grid index, so no two cells share a stream.
    Deterministic cells (deterministic arrivals, ``service_cv == 0``, and
    no ``random`` policy) collapse to a single replication: re-running an
    identical simulation is redundant.
    """

    policies: tuple[str, ...] = ("least_loaded",)
    arrival_rates_hz: tuple[float, ...] = (0.05, 0.1, 0.2)
    fleet_sizes: tuple[int, ...] = (1, 2, 4)
    disciplines: tuple[str, ...] = ("immediate",)
    queue_bounds: tuple[int | None, ...] = (None,)
    #: Fleet power-budget axis.  Policy names are accepted and normalised
    #: to :class:`GovernorSpec` (only ``"unlimited"`` works bare — the
    #: other policies need knobs, so pass specs).
    governors: tuple[GovernorSpec | str, ...] = (GovernorSpec(),)
    #: Pacing-fidelity axis.  Backend names are accepted and normalised to
    #: :class:`~repro.core.thermal_backend.ThermalSpec`.
    thermals: tuple[ThermalSpec | str, ...] = (ThermalSpec(),)
    #: Fleet-shape axis: ``None`` is the flat fleet (the ``fleet_sizes``
    #: axis applies); a :class:`~repro.traffic.topology.TopologySpec` runs
    #: hierarchically/sharded with the device count, budgets, and rack
    #: dispatch taken from the spec — such cells ignore the ``fleet_sizes``
    #: and ``governors`` axes (first value kept) and are skipped under the
    #: ``fluid`` discipline, which models one pool.
    topologies: tuple[TopologySpec | None, ...] = (None,)
    n_requests: int = 200
    arrival_kind: str = "poisson"
    service_mean_s: float = 5.0
    service_cv: float = 0.0
    deadline_s: float | None = None
    sprint_speedup: float = 10.0
    sprint_enabled: bool = True
    refuse_partial_sprints: bool = False
    slo_s: float | None = None
    base_seed: int = 0
    burst_factor: float = 5.0
    burst_mean_requests: float = 10.0
    diurnal_amplitude: float = 0.8
    diurnal_period_s: float = 3600.0
    replications: int = 1
    pairing: str = "crn"
    #: When False every cell runs sample-free (flat memory per cell, sketch
    #: summaries within the documented rank-error bound).
    keep_samples: bool = True
    #: Streaming instruments each cell runs (see
    #: :func:`repro.traffic.fleet.resolve_telemetry`); cell telemetry lands
    #: on :class:`CellResult` and merges across replicates and workers.
    #: Fluid cells run instrument-free regardless.
    telemetry: TelemetrySpec | bool | None = None
    #: Engine execution strategy for the discrete-event cells: ``"batched"``
    #: (default — vectorized fast path where eligible, bit-identical to the
    #: event loop, with the engagement outcome reported per cell on
    #: :attr:`CellResult.fast_path`) or ``"exact"``.  Fluid cells ignore it.
    engine: str = "batched"

    def __post_init__(self) -> None:
        if (
            not self.policies
            or not self.arrival_rates_hz
            or not self.fleet_sizes
            or not self.disciplines
            or not self.queue_bounds
            or not self.governors
            or not self.thermals
            or not self.topologies
        ):
            raise ValueError("every grid axis needs at least one value")
        # Normalise the governor and thermal axes so every cell carries a
        # spec (names validate themselves at construction).
        object.__setattr__(
            self,
            "governors",
            tuple(
                g if isinstance(g, GovernorSpec) else GovernorSpec(policy=g)
                for g in self.governors
            ),
        )
        object.__setattr__(
            self,
            "thermals",
            tuple(
                t if isinstance(t, ThermalSpec) else ThermalSpec(backend=t)
                for t in self.thermals
            ),
        )
        unknown = [p for p in self.policies if p not in DISPATCH_POLICIES]
        if unknown:
            raise ValueError(f"unknown dispatch policies: {unknown}")
        bad = [d for d in self.disciplines if d not in SWEEP_DISCIPLINES]
        if bad:
            raise ValueError(
                f"unknown disciplines: {bad}; available: {SWEEP_DISCIPLINES}"
            )
        if any(b is not None and b < 0 for b in self.queue_bounds):
            raise ValueError("queue bounds must be non-negative (or None)")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline must be positive (or None)")
        if self.arrival_kind not in ARRIVAL_KINDS:
            raise ValueError(
                f"unknown arrival kind {self.arrival_kind!r}; "
                f"available: {ARRIVAL_KINDS}"
            )
        if any(rate <= 0 for rate in self.arrival_rates_hz):
            raise ValueError("arrival rates must be positive")
        if any(size < 1 for size in self.fleet_sizes):
            raise ValueError("fleet sizes must be at least 1")
        if self.n_requests < 1:
            raise ValueError("at least one request per cell is required")
        if self.service_mean_s <= 0:
            raise ValueError("mean service time must be positive")
        if self.service_cv < 0:
            raise ValueError("service-time coefficient of variation must be non-negative")
        if self.slo_s is not None and self.slo_s <= 0:
            raise ValueError("SLO must be positive")
        if self.sprint_speedup < 1.0:
            raise ValueError("sprint speedup must be at least 1x")
        if self.arrival_kind == "bursty":
            if self.burst_factor <= 1.0:
                raise ValueError("burst factor must exceed 1 (burst rate above mean)")
            if self.burst_mean_requests <= 0:
                raise ValueError("mean requests per burst must be positive")
        if self.arrival_kind == "diurnal":
            if not 0.0 <= self.diurnal_amplitude < 1.0:
                raise ValueError("diurnal amplitude must be in [0, 1)")
            if self.diurnal_period_s <= 0:
                raise ValueError("diurnal period must be positive")
        if self.replications < 1:
            raise ValueError("at least one replication per cell is required")
        if self.pairing not in PAIRING_MODES:
            raise ValueError(
                f"unknown pairing mode {self.pairing!r}; available: {PAIRING_MODES}"
            )
        if self.engine not in EXECUTION_MODES:
            raise ValueError(
                f"unknown engine execution {self.engine!r}; "
                f"available: {EXECUTION_MODES}"
            )
        resolve_telemetry(self.telemetry, self.keep_samples)  # fail fast

    def with_sprint_enabled(self, enabled: bool) -> "SweepSpec":
        """Copy toggling sprinting (for paired sprint/no-sprint sweeps)."""
        return replace(self, sprint_enabled=enabled)

    def arrival_process(self, rate_hz: float) -> ArrivalProcess:
        """Instantiate the spec's arrival family at a cell's mean rate."""
        if self.arrival_kind == "poisson":
            return PoissonArrivals(rate_hz)
        if self.arrival_kind == "bursty":
            # Mean rate is preserved: bursts run at burst_factor * rate and
            # occupy 1/burst_factor of the time.
            mean_burst_s = self.burst_mean_requests / (self.burst_factor * rate_hz)
            mean_idle_s = mean_burst_s * (self.burst_factor - 1.0)
            return MMPPArrivals.bursty(
                burst_rate_hz=self.burst_factor * rate_hz,
                mean_burst_s=mean_burst_s,
                mean_idle_s=mean_idle_s,
            )
        if self.arrival_kind == "diurnal":
            return DiurnalArrivals(
                base_rate_hz=rate_hz,
                amplitude=self.diurnal_amplitude,
                period_s=self.diurnal_period_s,
            )
        return DeterministicArrivals(1.0 / rate_hz)


@dataclass(frozen=True)
class SweepCell:
    """One scenario in the grid, with its deterministic seed material."""

    index: int
    policy: str
    arrival_rate_hz: float
    n_devices: int
    base_seed: int
    #: Position on the arrival-rate axis.  Every other axis is deliberately
    #: excluded: the request stream depends only on the arrival process, so
    #: cells differing in policy, fleet size, discipline, or queue bound
    #: replay the exact same stream (paired comparisons on all of them).
    stream_key: tuple[int, ...] = (0,)
    #: Dispatch discipline: ``"immediate"`` (the policy axis applies) or a
    #: central-queue discipline (``"fifo"``/``"edf"``).
    discipline: str = "immediate"
    #: Central-queue admission limit (ignored by immediate cells).
    queue_bound: int | None = None
    #: Fleet power budget this cell sprints under.
    governor: GovernorSpec = GovernorSpec()
    #: Pacing fidelity this cell's devices simulate with.
    thermal: ThermalSpec = ThermalSpec()
    #: Hierarchical fleet shape (None = flat; budgets then come from
    #: ``governor``, otherwise from the topology's nodes).
    topology: TopologySpec | None = None

    @property
    def seed_sequence(self) -> np.random.SeedSequence:
        """Request-stream seed: stable under worker count, chunking, and the
        set of policies in the grid."""
        return np.random.SeedSequence([self.base_seed, *self.stream_key])


@dataclass(frozen=True)
class CellResult:
    """A cell and its serving metrics.

    ``summary`` is replication 0 (the legacy stream, so single-replication
    sweeps are bit-identical to the pre-replication engine); a replicated
    sweep additionally carries every replicate's summary in
    ``replicates`` and reduces them to confidence intervals with
    :meth:`estimate`.
    """

    cell: SweepCell
    summary: TrafficSummary
    #: All replicate summaries, in replication order (empty tuple means the
    #: cell ran once; :attr:`summaries` normalises that to ``(summary,)``).
    replicates: tuple[TrafficSummary, ...] = ()
    #: True when the sweep collapsed this cell's replications because the
    #: scenario is deterministic (its single value is exact, not sampled).
    collapsed: bool = False
    #: Per-replication streaming instruments, in replication order (empty
    #: when the sweep ran with telemetry off).  :meth:`pooled_stream`
    #: merges the sketches into one cell-level distribution.
    telemetries: tuple[RunTelemetry | None, ...] = ()
    #: True when replication 0 rode the vectorized fast path (always False
    #: for fluid cells and under ``engine="exact"``).
    fast_path: bool = False
    #: Why the batched engine fell back to the exact loop for this cell
    #: (None when the fast path engaged or was never requested).
    fast_path_reason: str | None = None

    @property
    def summaries(self) -> tuple[TrafficSummary, ...]:
        """Every replication's summary (always at least ``(summary,)``)."""
        return self.replicates or (self.summary,)

    @property
    def telemetry(self) -> RunTelemetry | None:
        """Replication 0's instruments (None when telemetry was off)."""
        return self.telemetries[0] if self.telemetries else None

    def pooled_stream(self) -> TrafficTelemetry:
        """Merge every replication's streaming telemetry into one stream.

        The merged sketch summarises the cell's pooled latency
        distribution across replications in fixed memory — the sweep-side
        counterpart of
        :meth:`repro.traffic.experiments.ExperimentResult.pooled_stream`.
        """
        streams = [t.stream for t in self.telemetries if t is not None and t.stream]
        if not streams:
            raise ValueError(
                "no streaming telemetry to pool (run the sweep with "
                "keep_samples=False or an explicit TelemetrySpec)"
            )
        pooled = TrafficTelemetry(sketch_capacity=streams[0].latency.capacity)
        for stream in streams:
            pooled.merge(stream)
        return pooled

    def estimate(
        self, field: str = "p99_latency_s", confidence: float = 0.95
    ) -> MetricEstimate:
        """Replication-averaged mean / CI half-width of one summary field.

        A cell that ran once reports an exact zero-width estimate when the
        sweep collapsed it as deterministic, and an unbounded one when it
        simply was not replicated.
        """
        values = [getattr(s, field) for s in self.summaries]
        if any(v is None for v in values):
            raise ValueError(
                f"field {field!r} is unset on at least one replicate "
                "(set spec.slo_s to aggregate slo_attainment)"
            )
        if len(values) == 1 and self.collapsed:
            return MetricEstimate.exact(float(values[0]), confidence=confidence)
        return mean_ci(values, confidence=confidence)


def expand_cells(spec: SweepSpec) -> list[SweepCell]:
    """Enumerate the grid in deterministic (policy, rate, fleet, discipline,
    bound, governor, thermal) order — the legacy enumeration when the new
    axes keep their single-value defaults, so existing seeds reproduce.

    Combinations that cannot differ are collapsed to one canonical cell, so
    no scenario is ever simulated twice: central-queue cells ignore the
    policy axis (only the first policy is kept), immediate cells ignore the
    queue bound (only the first bound is kept), duplicate governor and
    thermal values collapse to their first occurrence, a sprint-disabled
    sweep keeps only the first governor and the first thermal backend (a
    fleet that never sprints deposits no heat, so no power governor and no
    reservoir physics can affect it), and fluid cells — where the policy,
    bound, and governor axes have no meaning — keep one cell per (rate,
    fleet, thermal) with the unlimited governor.
    """
    governors = list(dict.fromkeys(spec.governors))  # ordered unique
    thermals = list(dict.fromkeys(spec.thermals))
    topologies = list(dict.fromkeys(spec.topologies))
    if not spec.sprint_enabled:
        governors = governors[:1]
        thermals = thermals[:1]
    grid = itertools.product(
        spec.policies,
        enumerate(spec.arrival_rates_hz),
        spec.fleet_sizes,
        spec.disciplines,
        spec.queue_bounds,
        governors,
        thermals,
        topologies,
    )
    cells = []
    for (
        policy,
        (rate_idx, rate),
        size,
        discipline,
        bound,
        governor,
        thermal,
        topology,
    ) in grid:
        if topology is not None:
            # A topology cell's device count and budgets come from the
            # spec tree; the fleet-size and governor axes have no meaning
            # there (first value kept, like the other collapses).
            if discipline == "fluid":
                continue
            if size != spec.fleet_sizes[0]:
                continue
            if governor != governors[0]:
                continue
            size = topology.total_devices
            governor = GovernorSpec()
        if discipline == "immediate":
            if bound != spec.queue_bounds[0]:
                continue
            bound = None
        elif discipline == "fluid":
            if policy != spec.policies[0]:
                continue
            if bound != spec.queue_bounds[0]:
                continue
            if governor != governors[0]:
                continue
            bound = None
            governor = GovernorSpec()
        elif policy != spec.policies[0]:
            continue
        cells.append(
            SweepCell(
                index=len(cells),
                policy=policy,
                arrival_rate_hz=rate,
                n_devices=size,
                base_seed=spec.base_seed,
                stream_key=(rate_idx,),
                discipline=discipline,
                queue_bound=bound,
                governor=governor,
                thermal=thermal,
                topology=topology,
            )
        )
    return cells


def cell_is_deterministic(spec: SweepSpec, cell: SweepCell) -> bool:
    """True when replications of this cell cannot differ.

    Deterministic arrivals with fixed service demands leave only the
    dispatch RNG, consumed solely by the ``random`` immediate-mode policy
    — every other combination replays identically, so the sweep collapses
    its replications to one (redundant-cell collapse on the replication
    axis).
    """
    if spec.arrival_kind != "deterministic" or spec.service_cv > 0:
        return False
    return not (cell.discipline == "immediate" and cell.policy == "random")


# Domain tags keeping the sweep's replication streams disjoint from each
# other and from every other seed universe (the legacy cell streams use
# shorter keys; repro.traffic.experiments uses its own tags).
_REP_REQUEST_DOMAIN = 17
_REP_DISPATCH_DOMAIN = 19


def _cell_seeds(
    spec: SweepSpec, cell: SweepCell, replication: int
) -> tuple[np.random.SeedSequence, np.random.SeedSequence]:
    """Request-stream and dispatch seeds of one replication of one cell.

    Under ``"crn"`` pairing, replication 0 replays the legacy streams —
    so default (``replications=1``) sweeps are bit-identical across
    engine versions — and later replications append a domain tag and the
    replication index to the stream key, keeping same-rate cells paired
    per replication.  ``"independent"`` pairing instead keys *every*
    replication (including 0) by the cell's grid index, so no two cells
    share a stream — which is the point of the mode, and why it forgoes
    the legacy replay.  The domain tags keep the request and dispatch
    universes disjoint even where ``cell.index`` happens to equal a
    stream-key word.
    """
    if spec.pairing == "independent":
        return (
            seed_stream(
                cell.base_seed,
                _REP_REQUEST_DOMAIN,
                *cell.stream_key,
                replication,
                1 + cell.index,
            ),
            seed_stream(cell.base_seed, _REP_DISPATCH_DOMAIN, cell.index, replication),
        )
    if replication == 0:
        return cell.seed_sequence, np.random.SeedSequence([cell.base_seed, cell.index])
    return (
        seed_stream(cell.base_seed, _REP_REQUEST_DOMAIN, *cell.stream_key, replication),
        seed_stream(cell.base_seed, _REP_DISPATCH_DOMAIN, cell.index, replication),
    )


def run_cell(
    spec: SweepSpec, cell: SweepCell, config: SystemConfig, replication: int = 0
) -> CellResult:
    """Simulate one replication of one grid cell end to end."""
    if spec.service_cv > 0:
        service = GammaService(mean_s=spec.service_mean_s, cv=spec.service_cv)
    else:
        service = FixedService(spec.service_mean_s)
    request_seed, run_seed = _cell_seeds(spec, cell, replication)
    requests = generate_requests(
        spec.arrival_process(cell.arrival_rate_hz),
        service,
        spec.n_requests,
        seed=request_seed,
        deadline_s=spec.deadline_s,
    )
    fluid = cell.discipline == "fluid"
    central = not fluid and cell.discipline != "immediate"
    if fluid:
        mode = "fluid"
    elif central:
        mode = "central_queue"
    else:
        mode = "immediate"
    fleet = FleetSimulator(
        config,
        n_devices=None if cell.topology is not None else cell.n_devices,
        topology=cell.topology,
        policy=cell.policy,
        sprint_speedup=spec.sprint_speedup,
        sprint_enabled=spec.sprint_enabled,
        refuse_partial_sprints=spec.refuse_partial_sprints,
        mode=mode,
        discipline=cell.discipline if central else "fifo",
        queue_bound=cell.queue_bound if central else None,
        governor=cell.governor,
        thermal=cell.thermal,
        keep_samples=spec.keep_samples,
        telemetry=False if fluid else spec.telemetry,
        engine=spec.engine,
    )
    result = fleet.run(requests, seed=run_seed)
    telemetries = (result.telemetry,) if result.telemetry is not None else ()
    return CellResult(
        cell=cell,
        summary=result.summary(slo_s=spec.slo_s),
        telemetries=telemetries,
        # Fluid results predate the fast-path ledger; getattr keeps them
        # reporting the (correct) "never engaged" default.
        fast_path=getattr(result, "fast_path", False),
        fast_path_reason=getattr(result, "fast_path_reason", None),
    )


def _run_cell_job(
    job: tuple[SweepSpec, SweepCell, SystemConfig] | tuple,
) -> CellResult:
    """Module-level unpacking shim so Pool.imap can pickle the work items."""
    spec, cell, config, *rest = job
    return run_cell(spec, cell, config, replication=rest[0] if rest else 0)


@dataclass(frozen=True)
class SweepResult:
    """All cell results of one sweep, in grid order."""

    spec: SweepSpec
    cells: tuple[CellResult, ...]

    def filtered(
        self,
        policy: str | None = None,
        arrival_rate_hz: float | None = None,
        n_devices: int | None = None,
        discipline: str | None = None,
        governor_policy: str | None = None,
        thermal_backend: str | None = None,
    ) -> list[CellResult]:
        """Cells matching the given axis values (None = any)."""
        out = []
        for result in self.cells:
            cell = result.cell
            if policy is not None and cell.policy != policy:
                continue
            if arrival_rate_hz is not None and cell.arrival_rate_hz != arrival_rate_hz:
                continue
            if n_devices is not None and cell.n_devices != n_devices:
                continue
            if discipline is not None and cell.discipline != discipline:
                continue
            if governor_policy is not None and cell.governor.policy != governor_policy:
                continue
            if thermal_backend is not None and cell.thermal.backend != thermal_backend:
                continue
            out.append(result)
        return out

    def best_cell(self, key: str = "p99_latency_s") -> CellResult:
        """The cell minimising a :class:`TrafficSummary` attribute."""
        return min(self.cells, key=lambda r: getattr(r.summary, key))

    def format_table(self) -> str:
        """Human-readable grid summary (one row per cell).

        Immediate cells show their policy; central-queue cells show the
        queue discipline and bound (the policy axis is not consulted
        there).  The thermal column is the cell's pacing-fidelity backend.
        The lifecycle columns count rejected and abandoned requests; the
        governance columns show the cell's power budget and its
        denied-sprint and breaker-trip counts.  The ``path`` column shows
        how each cell executed: ``vector`` (the batched fast path
        engaged), ``exact`` (the event loop — hover
        :attr:`CellResult.fast_path_reason` for why), or ``fluid``.  A
        replicated sweep (``spec.replications > 1``) reports the
        replication-mean p99 with its CI half-width in place of the
        single-run p99.
        """
        replicated = self.spec.replications > 1
        p99_head = f"{'p99':>8} {'±95%':>7}" if replicated else f"{'p99':>8}"
        header = (
            f"{'dispatch':>16} {'governor':>16} {'thermal':>10} {'rate':>8} "
            f"{'fleet':>6} {'p50':>8} {p99_head} "
            f"{'sprint%':>8} {'full%':>6} {'rps':>8} {'rej':>5} {'abn':>5} "
            f"{'den':>5} {'trip':>4} {'path':>6}"
        )
        rows = [header]
        for result in self.cells:
            cell, s = result.cell, result.summary
            if cell.discipline == "immediate":
                dispatch = cell.policy
            elif cell.discipline == "fluid":
                dispatch = "fluid"
            else:
                bound = "∞" if cell.queue_bound is None else str(cell.queue_bound)
                dispatch = f"{cell.discipline}[{bound}]"
            if cell.topology is not None:
                dispatch = f"{dispatch}@{cell.topology.n_racks}r"
            if replicated:
                p99 = result.estimate("p99_latency_s")
                p99_text = f"{p99.mean:7.2f}s {p99.half_width:6.2f}s"
            else:
                p99_text = f"{s.p99_latency_s:7.2f}s"
            if cell.discipline == "fluid":
                path = "fluid"
            elif result.fast_path:
                path = "vector"
            else:
                path = "exact"
            rows.append(
                f"{dispatch:>16} {cell.governor.label:>16} {cell.thermal.label:>10} "
                f"{cell.arrival_rate_hz:7.3f}/s {cell.n_devices:6d} "
                f"{s.p50_latency_s:7.2f}s {p99_text} "
                f"{s.sprint_fraction * 100:7.0f}% {s.mean_sprint_fullness * 100:5.0f}% "
                f"{s.throughput_rps:8.3f} {s.rejected_count:5d} {s.abandoned_count:5d} "
                f"{s.sprints_denied:5d} {s.breaker_trips:4d} {path:>6}"
            )
        return "\n".join(rows)


def run_sweep(
    spec: SweepSpec,
    config: SystemConfig | None = None,
    workers: int = 1,
) -> SweepResult:
    """Run every cell of the grid, optionally fanned across processes.

    ``workers=1`` runs serially in-process; ``workers>1`` fans the cell ×
    replication jobs through :func:`pool_map`.  Results are returned in
    grid order and are bit-identical for any worker count because every
    job's randomness is derived deterministically from the spec alone: the
    request stream from ``(base_seed, stream_key[, replication])`` — only
    the arrival-rate axis (plus the replication index), so policy and
    fleet-size comparisons are paired — and the dispatch RNG from
    ``(base_seed, cell index[, replication])``.  Deterministic cells
    collapse to a single replication (see :func:`cell_is_deterministic`).
    """
    config = config or SystemConfig.paper_default()
    cells = expand_cells(spec)
    reps = [
        1 if cell_is_deterministic(spec, cell) else spec.replications
        for cell in cells
    ]
    jobs = [
        (spec, cell, config, replication)
        for cell, n in zip(cells, reps)
        for replication in range(n)
    ]
    results = pool_map(_run_cell_job, jobs, workers)
    grouped: list[CellResult] = []
    offset = 0
    for cell, n in zip(cells, reps):
        group = results[offset : offset + n]
        offset += n
        replicates = tuple(r.summary for r in group)
        telemetries = tuple(r.telemetry for r in group)
        grouped.append(
            CellResult(
                cell=cell,
                summary=replicates[0],
                replicates=replicates if len(replicates) > 1 else (),
                collapsed=n == 1 and spec.replications > 1,
                telemetries=(
                    telemetries if any(t is not None for t in telemetries) else ()
                ),
                fast_path=group[0].fast_path,
                fast_path_reason=group[0].fast_path_reason,
            )
        )
    return SweepResult(spec=spec, cells=tuple(grouped))
