"""Scenario sweep engine: policy × arrival-rate × fleet-size grids.

One fleet run answers one question; the interesting questions — how much
fleet does a target SLO need, which dispatch policy wins under overload,
where does the no-sprint fleet fall off a cliff — are surfaces over a grid
of scenarios.  :func:`run_sweep` fans a grid of
(policy, arrival rate, fleet size) cells across worker processes with
:mod:`multiprocessing`, seeding each cell deterministically from the sweep's
base seed and the cell's position, so the full sweep is reproducible and
bit-identical whether it runs serially or on any number of workers.

Scenario knobs beyond the grid live in :class:`SweepSpec`: the arrival
process family (Poisson, bursty on-off, diurnal, or deterministic — all
parameterised by the cell's mean rate), the service-demand distribution,
the sprint speedup, and whether sprinting is enabled at all (for paired
sprint/no-sprint comparisons).
"""

from __future__ import annotations

import itertools
import multiprocessing
from dataclasses import dataclass, replace

import numpy as np

from repro.core.config import SystemConfig
from repro.traffic.arrivals import (
    ArrivalProcess,
    DeterministicArrivals,
    DiurnalArrivals,
    MMPPArrivals,
    PoissonArrivals,
)
from repro.traffic.fleet import DISPATCH_POLICIES, FleetSimulator
from repro.traffic.metrics import TrafficSummary
from repro.traffic.request import FixedService, GammaService, generate_requests

#: Arrival families the sweep can instantiate from a cell's mean rate.
ARRIVAL_KINDS = ("poisson", "bursty", "diurnal", "deterministic")


@dataclass(frozen=True)
class SweepSpec:
    """The grid and the scenario shared by every cell.

    ``burst_factor`` and ``burst_mean_requests`` only matter for the
    ``bursty`` arrival kind: bursts run at ``burst_factor`` times the
    cell's mean rate, are sized so a burst carries ``burst_mean_requests``
    expected requests, and are spaced so the long-run mean rate is
    preserved.  ``diurnal_amplitude`` and ``diurnal_period_s`` only apply
    to ``diurnal``.  ``service_cv = 0`` gives fixed-size requests.
    """

    policies: tuple[str, ...] = ("least_loaded",)
    arrival_rates_hz: tuple[float, ...] = (0.05, 0.1, 0.2)
    fleet_sizes: tuple[int, ...] = (1, 2, 4)
    n_requests: int = 200
    arrival_kind: str = "poisson"
    service_mean_s: float = 5.0
    service_cv: float = 0.0
    sprint_speedup: float = 10.0
    sprint_enabled: bool = True
    refuse_partial_sprints: bool = False
    slo_s: float | None = None
    base_seed: int = 0
    burst_factor: float = 5.0
    burst_mean_requests: float = 10.0
    diurnal_amplitude: float = 0.8
    diurnal_period_s: float = 3600.0

    def __post_init__(self) -> None:
        if not self.policies or not self.arrival_rates_hz or not self.fleet_sizes:
            raise ValueError("every grid axis needs at least one value")
        unknown = [p for p in self.policies if p not in DISPATCH_POLICIES]
        if unknown:
            raise ValueError(f"unknown dispatch policies: {unknown}")
        if self.arrival_kind not in ARRIVAL_KINDS:
            raise ValueError(
                f"unknown arrival kind {self.arrival_kind!r}; "
                f"available: {ARRIVAL_KINDS}"
            )
        if any(rate <= 0 for rate in self.arrival_rates_hz):
            raise ValueError("arrival rates must be positive")
        if any(size < 1 for size in self.fleet_sizes):
            raise ValueError("fleet sizes must be at least 1")
        if self.n_requests < 1:
            raise ValueError("at least one request per cell is required")
        if self.service_mean_s <= 0:
            raise ValueError("mean service time must be positive")
        if self.service_cv < 0:
            raise ValueError("service-time coefficient of variation must be non-negative")
        if self.slo_s is not None and self.slo_s <= 0:
            raise ValueError("SLO must be positive")
        if self.sprint_speedup < 1.0:
            raise ValueError("sprint speedup must be at least 1x")
        if self.arrival_kind == "bursty":
            if self.burst_factor <= 1.0:
                raise ValueError("burst factor must exceed 1 (burst rate above mean)")
            if self.burst_mean_requests <= 0:
                raise ValueError("mean requests per burst must be positive")
        if self.arrival_kind == "diurnal":
            if not 0.0 <= self.diurnal_amplitude < 1.0:
                raise ValueError("diurnal amplitude must be in [0, 1)")
            if self.diurnal_period_s <= 0:
                raise ValueError("diurnal period must be positive")

    def with_sprint_enabled(self, enabled: bool) -> "SweepSpec":
        """Copy toggling sprinting (for paired sprint/no-sprint sweeps)."""
        return replace(self, sprint_enabled=enabled)

    def arrival_process(self, rate_hz: float) -> ArrivalProcess:
        """Instantiate the spec's arrival family at a cell's mean rate."""
        if self.arrival_kind == "poisson":
            return PoissonArrivals(rate_hz)
        if self.arrival_kind == "bursty":
            # Mean rate is preserved: bursts run at burst_factor * rate and
            # occupy 1/burst_factor of the time.
            mean_burst_s = self.burst_mean_requests / (self.burst_factor * rate_hz)
            mean_idle_s = mean_burst_s * (self.burst_factor - 1.0)
            return MMPPArrivals.bursty(
                burst_rate_hz=self.burst_factor * rate_hz,
                mean_burst_s=mean_burst_s,
                mean_idle_s=mean_idle_s,
            )
        if self.arrival_kind == "diurnal":
            return DiurnalArrivals(
                base_rate_hz=rate_hz,
                amplitude=self.diurnal_amplitude,
                period_s=self.diurnal_period_s,
            )
        return DeterministicArrivals(1.0 / rate_hz)


@dataclass(frozen=True)
class SweepCell:
    """One scenario in the grid, with its deterministic seed material."""

    index: int
    policy: str
    arrival_rate_hz: float
    n_devices: int
    base_seed: int
    #: Position on the arrival-rate axis.  The policy and fleet-size axes
    #: are deliberately excluded: the request stream depends only on the
    #: arrival process, so cells differing in policy or fleet size replay
    #: the exact same stream (paired comparisons on both axes).
    stream_key: tuple[int, ...] = (0,)

    @property
    def seed_sequence(self) -> np.random.SeedSequence:
        """Request-stream seed: stable under worker count, chunking, and the
        set of policies in the grid."""
        return np.random.SeedSequence([self.base_seed, *self.stream_key])


@dataclass(frozen=True)
class CellResult:
    """A cell and its serving metrics."""

    cell: SweepCell
    summary: TrafficSummary


def expand_cells(spec: SweepSpec) -> list[SweepCell]:
    """Enumerate the grid in deterministic (policy, rate, fleet) order."""
    grid = itertools.product(
        spec.policies,
        enumerate(spec.arrival_rates_hz),
        spec.fleet_sizes,
    )
    return [
        SweepCell(
            index=i,
            policy=policy,
            arrival_rate_hz=rate,
            n_devices=size,
            base_seed=spec.base_seed,
            stream_key=(rate_idx,),
        )
        for i, (policy, (rate_idx, rate), size) in enumerate(grid)
    ]


def run_cell(spec: SweepSpec, cell: SweepCell, config: SystemConfig) -> CellResult:
    """Simulate one grid cell end to end."""
    if spec.service_cv > 0:
        service = GammaService(mean_s=spec.service_mean_s, cv=spec.service_cv)
    else:
        service = FixedService(spec.service_mean_s)
    requests = generate_requests(
        spec.arrival_process(cell.arrival_rate_hz),
        service,
        spec.n_requests,
        seed=cell.seed_sequence,
    )
    fleet = FleetSimulator(
        config,
        n_devices=cell.n_devices,
        policy=cell.policy,
        sprint_speedup=spec.sprint_speedup,
        sprint_enabled=spec.sprint_enabled,
        refuse_partial_sprints=spec.refuse_partial_sprints,
    )
    result = fleet.run(
        requests, seed=np.random.SeedSequence([cell.base_seed, cell.index])
    )
    return CellResult(cell=cell, summary=result.summary(slo_s=spec.slo_s))


def _run_cell_job(job: tuple[SweepSpec, SweepCell, SystemConfig]) -> CellResult:
    """Module-level unpacking shim so Pool.imap can pickle the work items."""
    spec, cell, config = job
    return run_cell(spec, cell, config)


@dataclass(frozen=True)
class SweepResult:
    """All cell results of one sweep, in grid order."""

    spec: SweepSpec
    cells: tuple[CellResult, ...]

    def filtered(
        self,
        policy: str | None = None,
        arrival_rate_hz: float | None = None,
        n_devices: int | None = None,
    ) -> list[CellResult]:
        """Cells matching the given axis values (None = any)."""
        out = []
        for result in self.cells:
            cell = result.cell
            if policy is not None and cell.policy != policy:
                continue
            if arrival_rate_hz is not None and cell.arrival_rate_hz != arrival_rate_hz:
                continue
            if n_devices is not None and cell.n_devices != n_devices:
                continue
            out.append(result)
        return out

    def best_cell(self, key: str = "p99_latency_s") -> CellResult:
        """The cell minimising a :class:`TrafficSummary` attribute."""
        return min(self.cells, key=lambda r: getattr(r.summary, key))

    def format_table(self) -> str:
        """Human-readable grid summary (one row per cell)."""
        header = (
            f"{'policy':>14} {'rate':>8} {'fleet':>6} {'p50':>8} {'p99':>8} "
            f"{'sprint%':>8} {'full%':>6} {'rps':>8}"
        )
        rows = [header]
        for result in self.cells:
            cell, s = result.cell, result.summary
            rows.append(
                f"{cell.policy:>14} {cell.arrival_rate_hz:7.3f}/s {cell.n_devices:6d} "
                f"{s.p50_latency_s:7.2f}s {s.p99_latency_s:7.2f}s "
                f"{s.sprint_fraction * 100:7.0f}% {s.mean_sprint_fullness * 100:5.0f}% "
                f"{s.throughput_rps:8.3f}"
            )
        return "\n".join(rows)


def run_sweep(
    spec: SweepSpec,
    config: SystemConfig | None = None,
    workers: int = 1,
) -> SweepResult:
    """Run every cell of the grid, optionally fanned across processes.

    ``workers=1`` runs serially in-process; ``workers>1`` uses a
    :class:`multiprocessing.Pool`.  Results are returned in grid order and
    are bit-identical for any worker count because each cell's randomness
    is derived deterministically from the spec alone: the request stream
    from ``(base_seed, stream_key)`` — only the arrival-rate axis, so
    policy and fleet-size comparisons are paired — and the dispatch RNG
    from ``(base_seed, cell index)``.
    """
    if workers < 1:
        raise ValueError("worker count must be at least 1")
    config = config or SystemConfig.paper_default()
    cells = expand_cells(spec)
    jobs = [(spec, cell, config) for cell in cells]
    if workers == 1 or len(cells) == 1:
        results = [_run_cell_job(job) for job in jobs]
    else:
        with multiprocessing.Pool(processes=min(workers, len(cells))) as pool:
            results = pool.map(_run_cell_job, jobs)
    return SweepResult(spec=spec, cells=tuple(results))
