"""Streaming telemetry: fixed-memory sketches, timeline probes, event traces.

The paper's headline claims live in the tail of the latency distribution,
but materialising a per-request latency list caps the horizon a run can
afford — "millions of users" means millions of samples nobody can hold.
This module is the fixed-memory answer, three instruments deep:

* :class:`QuantileSketch` — a mergeable KLL-style quantile sketch with
  **deterministic** compaction (no RNG anywhere, so runs stay bit-stable
  and CRN pairing is never perturbed).  Memory is
  ``O(capacity · log(n / capacity))`` regardless of how many values
  stream through; any quantile query is correct to within the documented
  normalised rank-error bound, property-tested against
  ``np.percentile`` on adversarial orderings.
* :class:`TimelineProbe` / :class:`FleetTimeline` — windowed time series
  of what the fleet was *doing*: queue depth, in-flight sprints and their
  granted excess power, denials, breaker trips, and peak package
  temperature / melt fraction per window, sampled at a configurable
  cadence through both engine modes.
* :class:`EventTrace` — a ring-buffered structured trace of the engine's
  request lifecycle (arrival/dispatch/grant/deny/release/trip/reject/
  abandon/complete), exportable to JSON-lines for breaker-trip
  post-mortems.

Everything merges: sketches, streaming moments, telemetry streams, and
timelines combine across shards, sweep cells, and replications, so
fleet-scale aggregate tail quantiles never require holding all samples
(the counter-based telemetry discipline of fleet-scale HPC evaluation).

Determinism contract
--------------------
All three instruments are *observers*: they never touch the engine's
event order, float paths, or RNG streams, so enabling them cannot perturb
a simulation — the golden fixture locks this.  The sketch's compaction is
keyed by per-level parity bits that alternate deterministically (and XOR
under merge, which makes merging commutative: ``a.merge(b)`` and
``b.merge(a)`` answer every quantile query identically).

Usage — a thousand latencies stream through 64 retained samples, and the
p90 query still lands within the documented rank-error bound:

>>> from repro.traffic.telemetry import QuantileSketch
>>> sketch = QuantileSketch(capacity=64)
>>> sketch.extend(float(i) for i in range(1000))
>>> sketch.count
1000
>>> abs(sketch.quantile(0.9) - 900.0) <= sketch.rank_error_bound * 1000
True
"""

from __future__ import annotations

import dataclasses
import json
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.traffic.device import ServedRequest
    from repro.traffic.governor import GovernorStats
    from repro.traffic.metrics import TrafficSummary

__all__ = [
    "EventTrace",
    "FleetTimeline",
    "QuantileSketch",
    "RunTelemetry",
    "StreamingMoments",
    "TelemetrySpec",
    "TimelineProbe",
    "TraceRecord",
    "TRACE_KINDS",
]


# -- the quantile sketch ----------------------------------------------------------------


class QuantileSketch:
    """Mergeable fixed-memory quantile sketch with deterministic compaction.

    A KLL-style compactor hierarchy: level ``k`` holds values standing in
    for ``2**k`` original samples each.  New values enter level 0; when
    the sketch exceeds its footprint, the lowest over-full level is
    sorted and every *other* value (starting from an alternating parity
    offset) is promoted to the next level, halving the buffer.  The
    parity alternation replaces KLL's random coin — compaction is fully
    deterministic, and two sketches fed the same values in the same order
    are bit-identical.

    **Accuracy contract.**  For any quantile ``q``, the returned value's
    true normalised rank is within :attr:`rank_error_bound` of ``q``
    (equivalently: ``quantile(0.99)`` lies between the exact
    ``99 - 100·eps`` and ``99 + 100·eps`` percentiles).  The bound is
    ``8 / capacity`` — deliberately conservative; the property suite
    measures adversarial orderings (sorted, reversed, organ-pipe,
    clustered duplicates) well inside it.  ``count``, ``sum``, ``min``
    and ``max`` are exact, so streaming means and extrema cost nothing.

    **Merging.**  ``merge`` concatenates per-level buffers and
    re-compacts; capacities must match.  Merging is exactly commutative
    (parity bits XOR, buffers are sorted before selection) and
    associative up to the rank-error bound — the error of a merge tree is
    bounded by the same contract as a single stream.
    """

    #: Hard floor on capacity — below this the error bound exceeds 25%.
    MIN_CAPACITY = 32

    def __init__(self, capacity: int = 512) -> None:
        if capacity < self.MIN_CAPACITY:
            raise ValueError(
                f"sketch capacity must be at least {self.MIN_CAPACITY}"
            )
        self.capacity = int(capacity)
        self._levels: list[list[float]] = [[]]
        self._parity: list[int] = [0]
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    # -- exact accumulators -------------------------------------------------------------

    @property
    def count(self) -> int:
        """Exact number of values streamed in (merges included)."""
        return self._count

    @property
    def sum(self) -> float:
        """Exact (streaming) sum of every value."""
        return self._sum

    @property
    def mean(self) -> float:
        """Streaming mean (0.0 for an empty sketch)."""
        return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        """Exact minimum (``inf`` when empty)."""
        return self._min

    @property
    def max(self) -> float:
        """Exact maximum (``-inf`` when empty)."""
        return self._max

    @property
    def rank_error_bound(self) -> float:
        """Documented normalised rank-error bound of every quantile query."""
        return 8.0 / self.capacity

    @property
    def retained(self) -> int:
        """Values currently held in the compactor hierarchy (the footprint)."""
        return sum(len(level) for level in self._levels)

    # -- feeding ------------------------------------------------------------------------

    def add(self, value: float) -> None:
        """Stream one value in (amortised O(log capacity))."""
        value = float(value)
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        self._levels[0].append(value)
        if len(self._levels[0]) >= self.capacity:
            self._compress()

    def extend(self, values: Iterable[float]) -> None:
        """Stream many values in (order-sensitive, same as repeated add)."""
        for value in values:
            self.add(value)

    def add_many(self, values: Sequence[float]) -> None:
        """Stream a column of values in — bit-identical to repeated :meth:`add`.

        The batched engine cores feed whole columns at once.  The exact
        accumulators consume the column in order (the sum is the same
        sequential float adds), and level 0 is filled in slices with
        compaction triggering exactly when it reaches capacity — so the
        retained hierarchy, and every future quantile answer, is identical
        to the per-value path.
        """
        if isinstance(values, np.ndarray):
            values = values.tolist()
        else:
            values = [float(v) for v in values]
        if not values:
            return
        self._count += len(values)
        total = self._sum
        for value in values:
            total += value
        self._sum = total
        low = min(values)
        high = max(values)
        if low < self._min:
            self._min = low
        if high > self._max:
            self._max = high
        level0 = self._levels[0]
        capacity = self.capacity
        i = 0
        n = len(values)
        while i < n:
            take = values[i : i + capacity - len(level0)]
            level0.extend(take)
            i += len(take)
            if len(level0) >= capacity:
                self._compress()
                level0 = self._levels[0]

    def _compress(self) -> None:
        """Halve the lowest over-full level; cascade while any is over-full."""
        k = 0
        while k < len(self._levels):
            buf = self._levels[k]
            if len(buf) < self.capacity:
                k += 1
                continue
            if k + 1 == len(self._levels):
                self._levels.append([])
                self._parity.append(0)
            buf.sort()
            parity = self._parity[k]
            self._parity[k] ^= 1
            self._levels[k + 1].extend(buf[parity::2])
            buf.clear()
            k += 1

    # -- querying -----------------------------------------------------------------------

    def _weighted(self) -> tuple[np.ndarray, np.ndarray]:
        """All retained values with their weights, sorted by value."""
        values = np.concatenate(
            [np.asarray(level, dtype=float) for level in self._levels if level]
        )
        weights = np.concatenate(
            [
                np.full(len(level), float(1 << k))
                for k, level in enumerate(self._levels)
                if level
            ]
        )
        order = np.argsort(values, kind="stable")
        return values[order], weights[order]

    def quantiles(self, qs: Sequence[float]) -> tuple[float, ...]:
        """Estimated quantiles at each ``q`` in [0, 1].

        Convention: the smallest retained value whose cumulative weight
        reaches ``q`` times the total weight — a step-function inverse
        CDF, so no interpolation error is added on top of the rank bound.
        The 0- and 1-quantiles are snapped to the exact min/max.
        """
        for q in qs:
            if not 0.0 <= q <= 1.0:
                raise ValueError("quantile probabilities must be in [0, 1]")
        if self._count == 0:
            raise ValueError("at least one value is required")
        values, weights = self._weighted()
        cum = np.cumsum(weights)
        total = cum[-1]
        out = []
        for q in qs:
            if q <= 0.0:
                out.append(self._min)
            elif q >= 1.0:
                out.append(self._max)
            else:
                idx = int(np.searchsorted(cum, q * total, side="left"))
                idx = min(idx, len(values) - 1)
                out.append(float(np.clip(values[idx], self._min, self._max)))
        return tuple(out)

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (see :meth:`quantiles`)."""
        return self.quantiles((q,))[0]

    def cdf(self, x: float) -> float:
        """Estimated fraction of streamed values ``<= x`` (same rank bound)."""
        if self._count == 0:
            raise ValueError("at least one value is required")
        if x < self._min:
            return 0.0
        if x >= self._max:
            return 1.0
        values, weights = self._weighted()
        idx = int(np.searchsorted(values, x, side="right"))
        total = float(np.sum(weights))
        return float(np.sum(weights[:idx])) / total

    # -- merging ------------------------------------------------------------------------

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold another sketch into this one (in place; returns self).

        Level buffers concatenate, parity bits XOR (which makes the
        operation commutative: either merge order yields the same
        retained multiset and the same future compaction schedule), and
        the hierarchy is re-compacted back under the footprint.
        """
        if not isinstance(other, QuantileSketch):
            raise TypeError("can only merge another QuantileSketch")
        if other.capacity != self.capacity:
            raise ValueError(
                f"sketch capacities must match to merge "
                f"({self.capacity} vs {other.capacity})"
            )
        while len(self._levels) < len(other._levels):
            self._levels.append([])
            self._parity.append(0)
        for k, level in enumerate(other._levels):
            self._levels[k].extend(level)
            self._parity[k] ^= other._parity[k]
        self._count += other._count
        self._sum += other._sum
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        self._compress()
        return self

    @classmethod
    def merged(cls, sketches: Iterable["QuantileSketch"]) -> "QuantileSketch":
        """A fresh sketch holding the union of the given sketches."""
        sketches = list(sketches)
        if not sketches:
            raise ValueError("at least one sketch is required")
        out = cls(capacity=sketches[0].capacity)
        for sketch in sketches:
            out.merge(sketch)
        return out


@dataclass
class StreamingMoments:
    """Exact count/sum/min/max accumulator — the O(1) half of a summary."""

    count: int = 0
    sum: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def add_many(self, values: Sequence[float]) -> None:
        """Fold a column of values in — bit-identical to repeated :meth:`add`."""
        if isinstance(values, np.ndarray):
            values = values.tolist()
        else:
            values = [float(v) for v in values]
        if not values:
            return
        self.count += len(values)
        total = self.sum
        for value in values:
            total += value
        self.sum = total
        low = min(values)
        high = max(values)
        if low < self.min:
            self.min = low
        if high > self.max:
            self.max = high

    @property
    def mean(self) -> float:
        """Streaming mean (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def merge(self, other: "StreamingMoments") -> "StreamingMoments":
        """Fold another accumulator in (in place; returns self)."""
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self


# -- the per-run telemetry stream -------------------------------------------------------


class TrafficTelemetry:
    """Online :class:`~repro.traffic.metrics.TrafficSummary` accumulator.

    Fed one :class:`~repro.traffic.device.ServedRequest` at a time by the
    engine, it maintains everything a summary needs in fixed memory: a
    latency :class:`QuantileSketch` (p50/p95/p99 and SLO attainment via
    :meth:`QuantileSketch.cdf`), streaming moments for queueing delay and
    stored heat, counters for sprints/fullness/deadline misses, and the
    arrival/completion extrema for the makespan.  ``merge`` combines
    streams across shards or replications, so fleet-wide tail quantiles
    never require the samples.
    """

    def __init__(self, sketch_capacity: int = 512) -> None:
        self.latency = QuantileSketch(capacity=sketch_capacity)
        self.queueing = StreamingMoments()
        self.stored_heat = StreamingMoments()
        self.sprint_count = 0
        self.sprint_fullness_sum = 0.0
        self.deadline_miss_count = 0
        self.peak_temperature_c = 0.0
        self.peak_melt_fraction = 0.0
        self.first_arrival_s = math.inf
        self.last_completion_s = -math.inf
        self.rejected_count = 0
        self.abandoned_count = 0

    @property
    def request_count(self) -> int:
        """Served requests observed so far."""
        return self.latency.count

    def observe(self, served: "ServedRequest") -> None:
        """Fold one served request into the stream (O(log capacity))."""
        self.latency.add(served.latency_s)
        self.queueing.add(served.queueing_delay_s)
        self.stored_heat.add(served.stored_heat_after_j)
        if served.sprinted:
            self.sprint_count += 1
        self.sprint_fullness_sum += served.sprint_fullness
        if served.missed_deadline:
            self.deadline_miss_count += 1
        if served.package_temperature_c > self.peak_temperature_c:
            self.peak_temperature_c = served.package_temperature_c
        if served.melt_fraction > self.peak_melt_fraction:
            self.peak_melt_fraction = served.melt_fraction
        arrival = served.request.arrival_s
        if arrival < self.first_arrival_s:
            self.first_arrival_s = arrival
        completion = served.completed_at_s
        if completion > self.last_completion_s:
            self.last_completion_s = completion

    def observe_batch(
        self,
        *,
        latencies: Sequence[float],
        queueing_delays: Sequence[float],
        stored_heats: Sequence[float],
        sprinted_count: int,
        fullness: Sequence[float],
        deadline_miss_count: int,
        peak_temperature_c: float,
        peak_melt_fraction: float,
        first_arrival_s: float,
        last_completion_s: float,
    ) -> None:
        """Fold a column of served requests in — bit-identical to :meth:`observe`.

        The batched engine cores buffer served-request columns and flush
        them here in served order.  Each accumulator is independent of the
        others, so feeding whole columns one accumulator at a time leaves
        exactly the state that interleaved per-request :meth:`observe`
        calls would: sketches and sequential sums consume their column in
        order, while counters and extrema fold pre-reduced scalars.
        """
        if not len(latencies):
            return
        self.latency.add_many(latencies)
        self.queueing.add_many(queueing_delays)
        self.stored_heat.add_many(stored_heats)
        self.sprint_count += sprinted_count
        total = self.sprint_fullness_sum
        for value in fullness:
            total += value
        self.sprint_fullness_sum = total
        self.deadline_miss_count += deadline_miss_count
        if peak_temperature_c > self.peak_temperature_c:
            self.peak_temperature_c = peak_temperature_c
        if peak_melt_fraction > self.peak_melt_fraction:
            self.peak_melt_fraction = peak_melt_fraction
        if first_arrival_s < self.first_arrival_s:
            self.first_arrival_s = first_arrival_s
        if last_completion_s > self.last_completion_s:
            self.last_completion_s = last_completion_s

    def observe_rejected(self) -> None:
        """Count one admission-control rejection."""
        self.rejected_count += 1

    def observe_abandoned(self) -> None:
        """Count one queued request abandoned at its deadline."""
        self.abandoned_count += 1

    def merge(self, other: "TrafficTelemetry") -> "TrafficTelemetry":
        """Fold another stream in (in place; returns self)."""
        self.latency.merge(other.latency)
        self.queueing.merge(other.queueing)
        self.stored_heat.merge(other.stored_heat)
        self.sprint_count += other.sprint_count
        self.sprint_fullness_sum += other.sprint_fullness_sum
        self.deadline_miss_count += other.deadline_miss_count
        self.peak_temperature_c = max(self.peak_temperature_c, other.peak_temperature_c)
        self.peak_melt_fraction = max(self.peak_melt_fraction, other.peak_melt_fraction)
        self.first_arrival_s = min(self.first_arrival_s, other.first_arrival_s)
        self.last_completion_s = max(self.last_completion_s, other.last_completion_s)
        self.rejected_count += other.rejected_count
        self.abandoned_count += other.abandoned_count
        return self

    def summarize(
        self,
        slo_s: float | None = None,
        governor_stats: "GovernorStats | None" = None,
    ) -> "TrafficSummary":
        """Reduce the stream to a :class:`~repro.traffic.metrics.TrafficSummary`.

        The sketch-backed twin of :func:`repro.traffic.metrics.summarize`:
        percentiles and SLO attainment come from the quantile sketch (and
        carry its rank-error bound in ``sketch_rank_error``); counts,
        means, and extrema are exact.  ``telemetry_source`` is
        ``"sketch"`` so downstream consumers can tell the two apart.
        """
        from repro.traffic.metrics import build_summary, validate_slo

        validate_slo(slo_s)
        n = self.request_count
        if n == 0:
            return build_summary(
                source="sketch",
                rank_error=self.latency.rank_error_bound,
                slo_s=slo_s,
                rejected_count=self.rejected_count,
                abandoned_count=self.abandoned_count,
                governor_stats=governor_stats,
            )
        p50, p95, p99 = self.latency.quantiles((0.50, 0.95, 0.99))
        makespan = self.last_completion_s - self.first_arrival_s
        return build_summary(
            source="sketch",
            rank_error=self.latency.rank_error_bound,
            request_count=n,
            makespan_s=makespan,
            throughput_rps=n / makespan if makespan > 0 else 0.0,
            mean_latency_s=self.latency.mean,
            p50_latency_s=p50,
            p95_latency_s=p95,
            p99_latency_s=p99,
            max_latency_s=self.latency.max,
            mean_queueing_s=self.queueing.mean,
            sprint_fraction=self.sprint_count / n,
            mean_sprint_fullness=self.sprint_fullness_sum / n,
            peak_stored_heat_j=self.stored_heat.max,
            mean_stored_heat_j=self.stored_heat.mean,
            peak_temperature_c=self.peak_temperature_c,
            peak_melt_fraction=self.peak_melt_fraction,
            slo_s=slo_s,
            slo_attainment=None if slo_s is None else self.latency.cdf(slo_s),
            rejected_count=self.rejected_count,
            abandoned_count=self.abandoned_count,
            deadline_miss_count=self.deadline_miss_count,
            governor_stats=governor_stats,
        )


# -- the fleet timeline probe -----------------------------------------------------------


@dataclass
class _Counters:
    """Per-window event counters (mutable while the probe is live)."""

    arrivals: int = 0
    served: int = 0
    rejected: int = 0
    abandoned: int = 0
    sprints_completed: int = 0
    sprints_granted: int = 0
    sprints_denied: int = 0
    breaker_trips: int = 0
    peak_temperature_c: float = 0.0
    peak_melt_fraction: float = 0.0


@dataclass
class _Gauges:
    """Per-window gauge peaks (queue depth, in-flight sprints)."""

    peak_queue_depth: int = 0
    peak_in_flight_sprints: int = 0


@dataclass(frozen=True)
class FleetTimeline:
    """Windowed fleet time series, columnar and mergeable.

    One row per cadence window, from the first arrival window through the
    run's horizon; empty windows carry zero counters and the standing
    gauge values, so ``window_start_s`` is always contiguous.  Counter
    columns obey request conservation over a completed run::

        arrivals.sum() == served.sum() + rejected.sum() + abandoned.sum()

    (the hypothesis invariant suite asserts this across the engine's
    whole configuration space).  Timelines merge across shards and
    replications: counters add, gauge/thermal peaks take the max.

    ``scope`` names what the timeline covers — ``"fleet"`` for a whole
    run, a hierarchical rack path (``row0/rack2``) for one topology
    shard's view; merging timelines with different scopes yields their
    longest common path prefix (``"fleet"`` when there is none).
    """

    cadence_s: float
    excess_power_w: float
    window_start_s: np.ndarray
    arrivals: np.ndarray
    served: np.ndarray
    rejected: np.ndarray
    abandoned: np.ndarray
    sprints_completed: np.ndarray
    sprints_granted: np.ndarray
    sprints_denied: np.ndarray
    breaker_trips: np.ndarray
    peak_queue_depth: np.ndarray
    peak_in_flight_sprints: np.ndarray
    peak_temperature_c: np.ndarray
    peak_melt_fraction: np.ndarray
    #: What the timeline covers: ``"fleet"`` or a hierarchical rack path.
    scope: str = "fleet"

    #: Counter columns (summed under merge); the rest are peaks (maxed).
    COUNTER_COLUMNS = (
        "arrivals",
        "served",
        "rejected",
        "abandoned",
        "sprints_completed",
        "sprints_granted",
        "sprints_denied",
        "breaker_trips",
    )
    PEAK_COLUMNS = (
        "peak_queue_depth",
        "peak_in_flight_sprints",
        "peak_temperature_c",
        "peak_melt_fraction",
    )

    @property
    def n_windows(self) -> int:
        """Number of cadence windows the timeline spans."""
        return len(self.window_start_s)

    @property
    def peak_granted_power_w(self) -> np.ndarray:
        """Peak granted excess draw per window (in-flight sprints × excess W)."""
        return self.peak_in_flight_sprints * self.excess_power_w

    def to_dict(self) -> dict:
        """Plain-JSON columnar form (lists, not arrays)."""
        out: dict = {
            "scope": self.scope,
            "cadence_s": self.cadence_s,
            "excess_power_w": self.excess_power_w,
            "window_start_s": [float(t) for t in self.window_start_s],
        }
        for name in self.COUNTER_COLUMNS:
            out[name] = [int(v) for v in getattr(self, name)]
        for name in self.PEAK_COLUMNS:
            out[name] = [float(v) for v in getattr(self, name)]
        return out

    def merge(self, other: "FleetTimeline") -> "FleetTimeline":
        """Combine two timelines window-by-window (returns a new timeline).

        Counters add and peaks take the max, aligned on window index; the
        shorter timeline is zero-padded (counters) / carried flat (peaks
        contribute nothing past their horizon).  Cadences must match.
        """
        if not math.isclose(self.cadence_s, other.cadence_s):
            raise ValueError(
                f"timeline cadences must match to merge "
                f"({self.cadence_s} vs {other.cadence_s})"
            )
        n = max(self.n_windows, other.n_windows)
        cadence = self.cadence_s

        def padded(timeline: FleetTimeline, name: str) -> np.ndarray:
            column = getattr(timeline, name)
            if len(column) == n:
                return column
            return np.concatenate(
                [column, np.zeros(n - len(column), dtype=column.dtype)]
            )

        columns = {
            name: padded(self, name) + padded(other, name)
            for name in self.COUNTER_COLUMNS
        }
        columns.update(
            {
                name: np.maximum(padded(self, name), padded(other, name))
                for name in self.PEAK_COLUMNS
            }
        )
        if self.scope == other.scope:
            scope = self.scope
        else:
            prefix = []
            for a, b in zip(self.scope.split("/"), other.scope.split("/")):
                if a != b:
                    break
                prefix.append(a)
            scope = "/".join(prefix) or "fleet"
        return FleetTimeline(
            cadence_s=cadence,
            excess_power_w=max(self.excess_power_w, other.excess_power_w),
            window_start_s=np.arange(n, dtype=float) * cadence,
            scope=scope,
            **columns,
        )


class TimelineProbe:
    """Live windowed sampler the engine drives during a run.

    Counters (arrivals, completions, rejections, grants, trips, thermal
    peaks) are bucketed by their event timestamp — completions by the
    request's *completion* instant, which in immediate mode can lie past
    the arrival event that computed it, so windows reflect simulated
    time, not processing order.  Gauges (queue depth, in-flight sprints)
    are updated in event order and carried forward across idle windows,
    recording each window's peak.  :meth:`finalize` freezes everything
    into a columnar :class:`FleetTimeline`.
    """

    def __init__(self, cadence_s: float, excess_power_w: float = 0.0) -> None:
        if cadence_s <= 0:
            raise ValueError("timeline cadence must be positive")
        self.cadence_s = float(cadence_s)
        self.excess_power_w = float(excess_power_w)
        self._counters: dict[int, _Counters] = {}
        self._gauges: dict[int, _Gauges] = {}
        self._queue_depth = 0
        self._in_flight = 0
        self._gauge_window = 0
        self._max_window = 0

    def _window(self, time_s: float) -> int:
        return max(0, int(time_s / self.cadence_s))

    def _counter_at(self, idx: int) -> _Counters:
        if idx > self._max_window:
            self._max_window = idx
        counter = self._counters.get(idx)
        if counter is None:
            counter = self._counters[idx] = _Counters()
        return counter

    def _counter(self, time_s: float) -> _Counters:
        return self._counter_at(self._window(time_s))

    # -- counters (any timestamp) -------------------------------------------------------

    def on_arrival(self, time_s: float) -> None:
        self._counter(time_s).arrivals += 1

    def on_rejected(self, time_s: float) -> None:
        self._counter(time_s).rejected += 1

    def on_abandoned(self, time_s: float) -> None:
        self._counter(time_s).abandoned += 1

    def on_served(self, served: "ServedRequest") -> None:
        counter = self._counter(served.completed_at_s)
        counter.served += 1
        if served.sprinted:
            counter.sprints_completed += 1
        if served.package_temperature_c > counter.peak_temperature_c:
            counter.peak_temperature_c = served.package_temperature_c
        if served.melt_fraction > counter.peak_melt_fraction:
            counter.peak_melt_fraction = served.melt_fraction

    def on_arrival_batch(self, times: Sequence[float]) -> None:
        """Count a column of arrivals — bit-identical to per-event calls.

        Window counters are order-free: grouping the column by window and
        adding per-window counts leaves the same counter state as one
        :meth:`on_arrival` call per timestamp.
        """
        times = np.asarray(times, dtype=float)
        if times.size == 0:
            return
        windows = (times / self.cadence_s).astype(np.int64)
        np.maximum(windows, 0, out=windows)
        unique, counts = np.unique(windows, return_counts=True)
        for idx, count in zip(unique.tolist(), counts.tolist()):
            self._counter_at(idx).arrivals += count

    def on_served_batch(
        self,
        completions: Sequence[float],
        sprinted: Sequence[bool],
        temperatures: Sequence[float],
        melts: "Sequence[float] | None" = None,
    ) -> None:
        """Fold a column of completions in — bit-identical to :meth:`on_served`.

        Completion counts and sprint counts add per window; thermal peaks
        take each window's column maximum and then the strict-greater
        update the scalar path applies, so the final per-window peaks
        match exactly.  ``melts=None`` (linear backends) leaves melt peaks
        untouched, as per-request zero melt fractions would.
        """
        completions = np.asarray(completions, dtype=float)
        if completions.size == 0:
            return
        windows = (completions / self.cadence_s).astype(np.int64)
        np.maximum(windows, 0, out=windows)
        sprinted = np.asarray(sprinted, dtype=bool)
        temperatures = np.asarray(temperatures, dtype=float)
        unique, inverse = np.unique(windows, return_inverse=True)
        served = np.bincount(inverse, minlength=unique.size)
        sprints = np.bincount(
            inverse, weights=sprinted, minlength=unique.size
        )
        temp_peak = np.full(unique.size, -np.inf)
        np.maximum.at(temp_peak, inverse, temperatures)
        if melts is not None:
            melt_peak = np.full(unique.size, -np.inf)
            np.maximum.at(melt_peak, inverse, np.asarray(melts, dtype=float))
        for j, idx in enumerate(unique.tolist()):
            counter = self._counter_at(idx)
            counter.served += int(served[j])
            counter.sprints_completed += int(sprints[j])
            temp = float(temp_peak[j])
            if temp > counter.peak_temperature_c:
                counter.peak_temperature_c = temp
            if melts is not None:
                melt = float(melt_peak[j])
                if melt > counter.peak_melt_fraction:
                    counter.peak_melt_fraction = melt

    def on_grant(self, time_s: float, granted: bool) -> None:
        counter = self._counter(time_s)
        if granted:
            counter.sprints_granted += 1
        else:
            counter.sprints_denied += 1

    def on_breaker_trip(self, time_s: float) -> None:
        self._counter(time_s).breaker_trips += 1

    # -- gauges (non-decreasing timestamps) ---------------------------------------------

    def _gauge(self, time_s: float) -> _Gauges:
        """The gauge record for ``time_s``, carrying standing values forward."""
        idx = self._window(time_s)
        if idx > self._max_window:
            self._max_window = idx
        for j in range(self._gauge_window, idx + 1):
            if j not in self._gauges:
                self._gauges[j] = _Gauges(
                    peak_queue_depth=self._queue_depth,
                    peak_in_flight_sprints=self._in_flight,
                )
        if idx > self._gauge_window:
            self._gauge_window = idx
        return self._gauges[idx]

    def on_queue_depth(self, time_s: float, depth: int) -> None:
        gauge = self._gauge(time_s)
        self._queue_depth = depth
        if depth > gauge.peak_queue_depth:
            gauge.peak_queue_depth = depth

    def on_in_flight_sprints(self, time_s: float, in_flight: int) -> None:
        gauge = self._gauge(time_s)
        self._in_flight = in_flight
        if in_flight > gauge.peak_in_flight_sprints:
            gauge.peak_in_flight_sprints = in_flight

    # -- freezing -----------------------------------------------------------------------

    def finalize(self, horizon_s: float | None = None) -> FleetTimeline:
        """Freeze the probe into a contiguous columnar :class:`FleetTimeline`.

        ``horizon_s`` extends the timeline through the run's resolved end
        (windows past the last event are emitted with zero counters and
        standing gauges); ``None`` stops at the last observed window.
        """
        last = self._max_window
        if horizon_s is not None:
            last = max(last, self._window(horizon_s))
        n = last + 1
        ints = {
            name: np.zeros(n, dtype=np.int64)
            for name in FleetTimeline.COUNTER_COLUMNS
        }
        temp = np.zeros(n, dtype=float)
        melt = np.zeros(n, dtype=float)
        for idx, counter in self._counters.items():
            for name in FleetTimeline.COUNTER_COLUMNS:
                ints[name][idx] = getattr(counter, name)
            temp[idx] = counter.peak_temperature_c
            melt[idx] = counter.peak_melt_fraction
        queue = np.zeros(n, dtype=np.int64)
        sprints = np.zeros(n, dtype=np.int64)
        standing_queue = 0
        standing_sprints = 0
        for idx in range(n):
            gauge = self._gauges.get(idx)
            if gauge is not None:
                queue[idx] = gauge.peak_queue_depth
                sprints[idx] = gauge.peak_in_flight_sprints
                standing_queue = gauge.peak_queue_depth
                standing_sprints = gauge.peak_in_flight_sprints
            else:
                queue[idx] = standing_queue
                sprints[idx] = standing_sprints
        return FleetTimeline(
            cadence_s=self.cadence_s,
            excess_power_w=self.excess_power_w,
            window_start_s=np.arange(n, dtype=float) * self.cadence_s,
            peak_queue_depth=queue,
            peak_in_flight_sprints=sprints,
            peak_temperature_c=temp,
            peak_melt_fraction=melt,
            **ints,
        )


# -- structured event tracing -----------------------------------------------------------

#: Lifecycle kinds an :class:`EventTrace` records, in lifecycle order.
TRACE_KINDS = (
    "arrival",
    "dispatch",
    "grant",
    "deny",
    "release",
    "trip",
    "reject",
    "abandon",
    "complete",
)


@dataclass(frozen=True)
class TraceRecord:
    """One structured trace event.

    ``device_id`` is the device's position within its serving engine;
    ``label`` is its stable hierarchical identity (``row0/rack2/dev5``)
    when the fleet carries one, so traces merged across topology shards
    stay attributable after engine-local positions collide.
    """

    time_s: float
    kind: str
    request_index: int | None = None
    device_id: int | None = None
    detail: float | None = None
    label: str | None = None

    def to_json(self) -> str:
        """One JSON-lines record (``None`` fields omitted)."""
        payload = {
            k: v for k, v in dataclasses.asdict(self).items() if v is not None
        }
        return json.dumps(payload, sort_keys=True)


class EventTrace:
    """Ring-buffered structured trace of the engine's request lifecycle.

    Bounded by construction: once ``capacity`` records are held, each new
    record overwrites the oldest (``dropped`` counts the overwritten
    ones), so tracing a million-request run costs the same memory as
    tracing a thousand-request one — and a breaker-trip post-mortem
    naturally keeps the *latest* events, which are the ones that matter.
    ``capacity=None`` keeps everything (debugging small runs).
    """

    def __init__(self, capacity: int | None = 4096) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("trace capacity must be positive (or None)")
        self.capacity = capacity
        self._ring: list[TraceRecord] = []
        self._next = 0
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._ring)

    def add(
        self,
        time_s: float,
        kind: str,
        request_index: int | None = None,
        device_id: int | None = None,
        detail: float | None = None,
        label: str | None = None,
    ) -> None:
        """Record one lifecycle event (O(1), never raises on overflow)."""
        if kind not in TRACE_KINDS:
            raise ValueError(f"unknown trace kind {kind!r}; available: {TRACE_KINDS}")
        record = TraceRecord(
            time_s=time_s,
            kind=kind,
            request_index=request_index,
            device_id=device_id,
            detail=detail,
            label=label,
        )
        if self.capacity is None or len(self._ring) < self.capacity:
            self._ring.append(record)
        else:
            self._ring[self._next] = record
            self._next = (self._next + 1) % self.capacity
            self.dropped += 1

    @property
    def records(self) -> tuple[TraceRecord, ...]:
        """Retained records in insertion order (oldest surviving first)."""
        return tuple(self._ring[self._next :] + self._ring[: self._next])

    def by_kind(self, kind: str) -> tuple[TraceRecord, ...]:
        """Retained records of one lifecycle kind."""
        if kind not in TRACE_KINDS:
            raise ValueError(f"unknown trace kind {kind!r}; available: {TRACE_KINDS}")
        return tuple(r for r in self.records if r.kind == kind)

    def to_jsonl(self) -> str:
        """The retained records as JSON-lines text."""
        return "\n".join(record.to_json() for record in self.records)

    def write_jsonl(self, path) -> int:
        """Write the retained records to ``path``; returns the record count."""
        records = self.records
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(record.to_json())
                handle.write("\n")
        return len(records)


# -- configuration and the per-run bundle -----------------------------------------------


@dataclass(frozen=True)
class TelemetrySpec:
    """What telemetry a run should collect (frozen, sweep/scenario friendly).

    ``sketch`` enables the streaming :class:`TrafficTelemetry` (required
    for summaries when ``keep_samples=False``); ``timeline_cadence_s``
    enables the :class:`TimelineProbe` at that window width; and
    ``trace_capacity`` enables the :class:`EventTrace` ring (``None``
    disables tracing, ``0`` means unbounded — debugging only).
    """

    sketch: bool = True
    sketch_capacity: int = 512
    timeline_cadence_s: float | None = None
    trace_capacity: int | None = None

    def __post_init__(self) -> None:
        if self.sketch_capacity < QuantileSketch.MIN_CAPACITY:
            raise ValueError(
                f"sketch capacity must be at least {QuantileSketch.MIN_CAPACITY}"
            )
        if self.timeline_cadence_s is not None and self.timeline_cadence_s <= 0:
            raise ValueError("timeline cadence must be positive (or None)")
        if self.trace_capacity is not None and self.trace_capacity < 0:
            raise ValueError("trace capacity must be non-negative (or None)")

    @property
    def enabled(self) -> bool:
        """True when any instrument is switched on."""
        return (
            self.sketch
            or self.timeline_cadence_s is not None
            or self.trace_capacity is not None
        )

    def build_stream(self) -> TrafficTelemetry | None:
        """A fresh telemetry stream per the spec (None when disabled)."""
        if not self.sketch:
            return None
        return TrafficTelemetry(sketch_capacity=self.sketch_capacity)

    def build_probe(self, excess_power_w: float = 0.0) -> TimelineProbe | None:
        """A fresh timeline probe per the spec (None when disabled)."""
        if self.timeline_cadence_s is None:
            return None
        return TimelineProbe(self.timeline_cadence_s, excess_power_w=excess_power_w)

    def build_trace(self) -> EventTrace | None:
        """A fresh event trace per the spec (None when disabled)."""
        if self.trace_capacity is None:
            return None
        return EventTrace(capacity=self.trace_capacity or None)


@dataclass(frozen=True)
class RunTelemetry:
    """Everything one run's telemetry instruments produced."""

    #: Streaming summary accumulator (None when the sketch was disabled).
    stream: TrafficTelemetry | None = None
    #: Frozen windowed time series (None when no cadence was configured).
    timeline: FleetTimeline | None = None
    #: Structured lifecycle trace (None when tracing was off).
    trace: EventTrace | None = None
