"""A sprint-capable device serving a stream of requests.

:class:`SprintDevice` wraps the thermal reservoir of
:class:`repro.core.pacing.SprintPacer` behind a serving interface: each
request it is handed runs sprinted if the device's remaining budget allows,
partially sprinted if only some does, or sustained otherwise — and the heat
it deposits is still there when the next request lands, so back-to-back
requests on a hot device genuinely see a depleted budget.  The reservoir
physics behind that budget is the device's ``thermal`` backend
(:mod:`repro.core.thermal_backend`): linear rule-of-thumb, RC cooling, or
per-request PCM enthalpy, whose temperature/melt telemetry rides on every
:class:`ServedRequest`.  The device also exposes the two projections a
dispatcher needs without perturbing state: when it will next be free, and
how much sprint budget a request arriving at a given time would find.

Two entry points hand the device work, matching the two dispatch modes of
:mod:`repro.traffic.engine`:

* :meth:`SprintDevice.serve` — immediate dispatch: the request joins the
  device at its arrival time and the pacer resolves any wait behind queued
  work (``queueing_delay_s`` comes from the pacer).
* :meth:`SprintDevice.execute` — deferred (central-queue) dispatch: the
  engine held the request in a shared queue and assigns it at a start time
  when the device is known to be free; the engine owns the queueing delay.

Usage — a cold device sprints the paper's canonical five-second task and
finishes it in half a second:

>>> from repro.core.config import SystemConfig
>>> from repro.traffic.device import SprintDevice
>>> from repro.traffic.request import Request
>>> dev = SprintDevice(SystemConfig.paper_default(), device_id=0)
>>> served = dev.serve(Request(index=0, arrival_s=0.0, sustained_time_s=5.0))
>>> served.sprinted, round(served.latency_s, 2)
(True, 0.5)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SystemConfig
from repro.core.pacing import SprintPacer, TaskOutcome
from repro.core.thermal_backend import ThermalBackend, ThermalSpec
from repro.traffic.request import Request


@dataclass(frozen=True)
class ServedRequest:
    """One request's fate after being dispatched and executed."""

    request: Request
    device_id: int
    sprinted: bool
    queueing_delay_s: float
    service_time_s: float
    stored_heat_before_j: float
    stored_heat_after_j: float
    #: How much of the achievable sprint speedup this request realised:
    #: 1.0 = full sprint, 0.0 = fully sustained, in between for partial
    #: sprints (``sprinted`` alone cannot distinguish a 97%-sustained
    #: partial sprint from a full one).
    sprint_fullness: float = 0.0
    #: Package temperature the device's thermal backend reported after the
    #: request completed (the linear backend maps fill linearly onto the
    #: ambient-to-limit range; physics backends report actual state).
    package_temperature_c: float = 0.0
    #: Liquid fraction of the device's PCM after the request (0 unless the
    #: device paces with the ``pcm`` backend).
    melt_fraction: float = 0.0

    @property
    def latency_s(self) -> float:
        """User-visible latency: queueing behind earlier work plus execution."""
        return self.queueing_delay_s + self.service_time_s

    @property
    def completed_at_s(self) -> float:
        """Absolute completion time."""
        return self.request.arrival_s + self.latency_s

    @property
    def missed_deadline(self) -> bool:
        """True when the request had a deadline and completed after it."""
        return self.completed_at_s > self.request.deadline_at_s


class SprintDevice:
    """One sprint-enabled machine in a fleet.

    Parameters
    ----------
    config:
        Platform description (package, policy, power) shared by the fleet.
    device_id:
        Stable identifier used in results and dispatch tie-breaking.
    sprint_speedup:
        Responsiveness gain of a full sprint over sustained execution.
    sprint_enabled:
        When False the device always runs sustained — the no-sprint
        baseline fleet of a comparison — while still tracking queueing.
    refuse_partial_sprints:
        Passed through to :class:`~repro.core.pacing.SprintPacer`.
    thermal:
        Reservoir fidelity of this device's package — a backend name, a
        :class:`~repro.core.thermal_backend.ThermalSpec`, or a prebuilt
        :class:`~repro.core.thermal_backend.ThermalBackend` (owned by this
        device; never share one instance across devices).  Passed through
        to :class:`~repro.core.pacing.SprintPacer`.
    """

    def __init__(
        self,
        config: SystemConfig,
        device_id: int = 0,
        sprint_speedup: float = 10.0,
        sprint_enabled: bool = True,
        refuse_partial_sprints: bool = False,
        thermal: str | ThermalSpec | ThermalBackend = "linear",
        label: str | None = None,
    ) -> None:
        self.device_id = device_id
        #: Stable hierarchical identity (``row0/rack2/dev5`` in a topology
        #: fleet); defaults to the flat ``dev{device_id}`` form.
        self.label = f"dev{device_id}" if label is None else label
        self.sprint_enabled = sprint_enabled
        self.pacer = SprintPacer(
            config,
            sprint_speedup=sprint_speedup,
            refuse_partial_sprints=refuse_partial_sprints,
            thermal=thermal,
        )
        self.requests_served = 0
        self.busy_seconds = 0.0
        self.sprints_served = 0
        self._sprint_fullness_total = 0.0
        self.peak_temperature_c = 0.0
        self.peak_melt_fraction = 0.0
        self.peak_stored_heat_j = 0.0

    # -- dispatcher-facing projections (read-only) --------------------------------

    @property
    def busy_until_s(self) -> float:
        """Absolute time at which the device finishes its queued work."""
        return self.pacer.busy_until_s

    def start_time_for(self, arrival_s: float) -> float:
        """When a request arriving at ``arrival_s`` would begin executing."""
        return max(arrival_s, self.busy_until_s)

    def available_fraction_at(self, time_s: float) -> float:
        """Projected sprint-budget fraction available at a future instant."""
        return self.pacer.available_fraction_at(time_s)

    @property
    def thermal_backend(self) -> ThermalBackend:
        """The thermal backend owning this device's reservoir state."""
        return self.pacer.backend

    @property
    def sprint_fullness_mean(self) -> float:
        """Mean realised sprint fullness over every request served so far."""
        if self.requests_served == 0:
            return 0.0
        return self._sprint_fullness_total / self.requests_served

    # -- serving --------------------------------------------------------------------

    def serve(self, request: Request, allow_sprint: bool | None = None) -> ServedRequest:
        """Execute one request; requests must be handed over in arrival order.

        Immediate-dispatch entry point: the request joins this device at its
        arrival time and waits behind any queued work (the pacer reports that
        wait in ``queueing_delay_s``).  ``allow_sprint`` is the grant
        handshake of a governed fleet: a power governor that denied this
        request's sprint grant passes False to force sustained execution
        (``None`` leaves the decision to the device's own
        ``sprint_enabled``; a grant never overrides a sprint-disabled
        device).
        """
        outcome = self.pacer.task_arrival(
            request.arrival_s,
            request.sustained_time_s,
            index=request.index,
            allow_sprint=self._may_sprint(allow_sprint),
        )
        return self._record(request, outcome)

    def execute(
        self, request: Request, start_s: float, allow_sprint: bool | None = None
    ) -> ServedRequest:
        """Execute one request starting exactly at ``start_s``.

        Central-queue entry point: the engine held the request in a shared
        queue and only assigns it when this device is free, so the queueing
        delay is the engine's (``start_s - arrival_s``), not the pacer's.
        ``allow_sprint`` carries a power governor's grant decision, as in
        :meth:`serve`.
        """
        outcome = self.pacer.execute_at(
            start_s,
            request.sustained_time_s,
            index=request.index,
            allow_sprint=self._may_sprint(allow_sprint),
            arrival_s=request.arrival_s,
        )
        return self._record(request, outcome)

    def _may_sprint(self, allow_sprint: bool | None) -> bool:
        if allow_sprint is None:
            return self.sprint_enabled
        return allow_sprint and self.sprint_enabled

    def _record(self, request: Request, outcome: TaskOutcome) -> ServedRequest:
        self.requests_served += 1
        self.busy_seconds += outcome.response_time_s
        self.sprints_served += int(outcome.sprinted)
        self._sprint_fullness_total += outcome.sprint_fullness
        # Running per-device thermal peaks: the hotspot record survives in
        # O(1) even when the run keeps no ServedRequest samples.
        if outcome.package_temperature_c > self.peak_temperature_c:
            self.peak_temperature_c = outcome.package_temperature_c
        if outcome.melt_fraction > self.peak_melt_fraction:
            self.peak_melt_fraction = outcome.melt_fraction
        if outcome.stored_heat_after_j > self.peak_stored_heat_j:
            self.peak_stored_heat_j = outcome.stored_heat_after_j
        return ServedRequest(
            request=request,
            device_id=self.device_id,
            sprinted=outcome.sprinted,
            queueing_delay_s=outcome.queueing_delay_s,
            service_time_s=outcome.response_time_s,
            stored_heat_before_j=outcome.stored_heat_before_j,
            stored_heat_after_j=outcome.stored_heat_after_j,
            sprint_fullness=outcome.sprint_fullness,
            package_temperature_c=outcome.package_temperature_c,
            melt_fraction=outcome.melt_fraction,
        )

    def absorb_batch(
        self,
        *,
        served: int,
        busy_seconds: float,
        sprints: int,
        fullness_total: float,
        clock_s: float,
        last_arrival_s: float,
        stored_heat_j: float,
        deposited_j: float,
        drained_j: float,
        peak_stored_heat_j: float,
        peak_temperature_c: float,
    ) -> None:
        """Fold a vectorized run's aggregates into this device's state.

        The batched engine path (:mod:`repro.traffic.fastpath`) executes a
        device's whole request chain in numpy with the exact scalar float
        ops, then lands counters, pacer clock, reservoir heat, and thermal
        peaks here in one step — bit-identical to having called
        :meth:`serve` per request.  Only meaningful for runs on the linear
        backend (the vector form exists only there); melt state never moves.
        """
        if served < 0 or sprints < 0 or sprints > served:
            raise ValueError("batch counters are inconsistent")
        self.requests_served += served
        self.busy_seconds += busy_seconds
        self.sprints_served += sprints
        self._sprint_fullness_total += fullness_total
        self.pacer.advance_to(clock_s, last_arrival_s)
        self.pacer.backend.absorb_batch(stored_heat_j, deposited_j, drained_j)
        if peak_temperature_c > self.peak_temperature_c:
            self.peak_temperature_c = peak_temperature_c
        if peak_stored_heat_j > self.peak_stored_heat_j:
            self.peak_stored_heat_j = peak_stored_heat_j

    def reset(self) -> None:
        """Cool the package and forget all serving history."""
        self.pacer.reset()
        self.requests_served = 0
        self.busy_seconds = 0.0
        self.sprints_served = 0
        self._sprint_fullness_total = 0.0
        self.peak_temperature_c = 0.0
        self.peak_melt_fraction = 0.0
        self.peak_stored_heat_j = 0.0
