"""A sprint-capable device serving a stream of requests.

:class:`SprintDevice` wraps the thermal reservoir of
:class:`repro.core.pacing.SprintPacer` behind a serving interface: each
request it is handed runs sprinted if the device's remaining budget allows,
partially sprinted if only some does, or sustained otherwise — and the heat
it deposits is still there when the next request lands, so back-to-back
requests on a hot device genuinely see a depleted budget.  The device also
exposes the two projections a dispatcher needs without perturbing state:
when it will next be free, and how much sprint budget a request arriving at
a given time would find.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import SystemConfig
from repro.core.pacing import SprintPacer
from repro.traffic.request import Request


@dataclass(frozen=True)
class ServedRequest:
    """One request's fate after being dispatched and executed."""

    request: Request
    device_id: int
    sprinted: bool
    queueing_delay_s: float
    service_time_s: float
    stored_heat_before_j: float
    stored_heat_after_j: float
    #: How much of the achievable sprint speedup this request realised:
    #: 1.0 = full sprint, 0.0 = fully sustained, in between for partial
    #: sprints (``sprinted`` alone cannot distinguish a 97%-sustained
    #: partial sprint from a full one).
    sprint_fullness: float = 0.0

    @property
    def latency_s(self) -> float:
        """User-visible latency: queueing behind earlier work plus execution."""
        return self.queueing_delay_s + self.service_time_s

    @property
    def completed_at_s(self) -> float:
        """Absolute completion time."""
        return self.request.arrival_s + self.latency_s


class SprintDevice:
    """One sprint-enabled machine in a fleet.

    Parameters
    ----------
    config:
        Platform description (package, policy, power) shared by the fleet.
    device_id:
        Stable identifier used in results and dispatch tie-breaking.
    sprint_speedup:
        Responsiveness gain of a full sprint over sustained execution.
    sprint_enabled:
        When False the device always runs sustained — the no-sprint
        baseline fleet of a comparison — while still tracking queueing.
    refuse_partial_sprints:
        Passed through to :class:`~repro.core.pacing.SprintPacer`.
    """

    def __init__(
        self,
        config: SystemConfig,
        device_id: int = 0,
        sprint_speedup: float = 10.0,
        sprint_enabled: bool = True,
        refuse_partial_sprints: bool = False,
    ) -> None:
        self.device_id = device_id
        self.sprint_enabled = sprint_enabled
        self.pacer = SprintPacer(
            config,
            sprint_speedup=sprint_speedup,
            refuse_partial_sprints=refuse_partial_sprints,
        )
        self.requests_served = 0
        self.busy_seconds = 0.0

    # -- dispatcher-facing projections (read-only) --------------------------------

    @property
    def busy_until_s(self) -> float:
        """Absolute time at which the device finishes its queued work."""
        return self.pacer.busy_until_s

    def start_time_for(self, arrival_s: float) -> float:
        """When a request arriving at ``arrival_s`` would begin executing."""
        return max(arrival_s, self.busy_until_s)

    def available_fraction_at(self, time_s: float) -> float:
        """Projected sprint-budget fraction available at a future instant."""
        return self.pacer.available_fraction_at(time_s)

    # -- serving --------------------------------------------------------------------

    def serve(self, request: Request) -> ServedRequest:
        """Execute one request; requests must be handed over in arrival order."""
        outcome = self.pacer.task_arrival(
            request.arrival_s,
            request.sustained_time_s,
            index=request.index,
            allow_sprint=self.sprint_enabled,
        )
        self.requests_served += 1
        self.busy_seconds += outcome.response_time_s
        return ServedRequest(
            request=request,
            device_id=self.device_id,
            sprinted=outcome.sprinted,
            queueing_delay_s=outcome.queueing_delay_s,
            service_time_s=outcome.response_time_s,
            stored_heat_before_j=outcome.stored_heat_before_j,
            stored_heat_after_j=outcome.stored_heat_after_j,
            sprint_fullness=outcome.sprint_fullness,
        )

    def reset(self) -> None:
        """Cool the package and forget all serving history."""
        self.pacer.reset()
        self.requests_served = 0
        self.busy_seconds = 0.0
