"""Heap-based discrete-event serving engine for sprint-capable fleets.

The engine advances a priority queue of timestamped events instead of a
python loop over requests, which buys three things the legacy
arrival-ordered loop could not express:

* **Central-queue (deferred) dispatch** — requests wait in a shared queue
  (FIFO or earliest-deadline-first) and are assigned to a device only when
  one frees, like a real serving frontend.  The legacy behaviour survives
  as *immediate* mode: every request is bound to a device at its arrival
  instant by a dispatch policy and queues on that device.
* **A request lifecycle** — bounded queues reject arrivals when full
  (admission control), and a queued request whose deadline passes before it
  starts is abandoned.  Served, rejected, and abandoned requests are
  reported separately in :class:`EngineResult`.
* **Indexed dispatch** — :class:`LeastLoadedIndex` tracks idle and busy
  devices in lazy-deletion heaps, so ``least_loaded`` dispatch costs
  O(log n) per request instead of an O(n) scan over the fleet.

Event kinds
-----------
``GRANT_RELEASE`` (a sprint's power grant returns to the governor),
``BREAKER_RESET`` (a tripped breaker's penalty window ends),
``DEVICE_FREE`` (a device finished its request), ``ARRIVAL`` (a request
reaches the frontend) and ``DEADLINE`` (a queued request's latency budget
expires) — resolved in that order at equal timestamps, so budget freed by
a sprint ending at an instant is visible to a request dispatched at that
same instant, a request arriving exactly when a device frees is served
without waiting, and a request whose dispatch opportunity coincides with
its deadline is served rather than abandoned.  Immediate mode only
schedules arrivals (plus grant releases when governed): device queueing
lives inside :class:`~repro.core.pacing.SprintPacer` there, and the
engine reproduces the legacy loop's latencies bit-identically.

Governed sprinting
------------------
With a non-trivial :class:`~repro.traffic.governor.SprintGovernor`, every
request bound to a sprint-capable device must acquire a grant before it
may run sprinted: denied requests execute sustained, granted requests
that end up not sprinting (device thermally exhausted) return their grant
immediately, and sprinting requests hold it until their completion
instant — released by a ``GRANT_RELEASE`` event, which at equal
timestamps resolves before ``DEVICE_FREE`` so a freed device's next
request sees the returned budget.  An unlimited governor (or none) takes
the exact ungoverned code path, bit-identical to PR 2's engine.

Thermal fidelity
----------------
The engine is agnostic to the reservoir physics a device paces against:
each :class:`~repro.traffic.device.SprintDevice` owns a thermal backend
(:mod:`repro.core.thermal_backend`), and the per-request
temperature/enthalpy telemetry it produces rides inside
:class:`~repro.traffic.device.ServedRequest` untouched through both
dispatch modes.  The ``thermal_aware`` policy and the central queue only
consume the backend-neutral projections (``busy_until_s``,
``available_fraction_at``), so every dispatch mode works with every
backend.

Dispatch policies (immediate mode)
----------------------------------
* ``round_robin`` — cycle through devices regardless of state,
* ``least_loaded`` — the device that can start the request soonest,
* ``thermal_aware`` — among the devices that can start soonest (within a
  slack window), the one with the most sprint budget left at start time,
* ``random`` — uniform choice, seeded by the run seed (the usual strawman).

Usage — two requests round-robined across a two-device fleet:

>>> import numpy as np
>>> from repro.core.config import SystemConfig
>>> from repro.traffic.device import SprintDevice
>>> from repro.traffic.engine import DISPATCH_POLICIES, ServingEngine
>>> from repro.traffic.request import Request
>>> devices = [
...     SprintDevice(SystemConfig.paper_default(), device_id=i) for i in range(2)
... ]
>>> engine = ServingEngine(devices, DISPATCH_POLICIES["round_robin"], "round_robin")
>>> result = engine.run(
...     [Request(0, 0.0, 5.0), Request(1, 1.0, 5.0)], np.random.default_rng(0)
... )
>>> [s.device_id for s in result.served], result.rejected_count
([0, 1], 0)
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.traffic.device import ServedRequest, SprintDevice
from repro.traffic.governor import GovernorStats, SprintGovernor
from repro.traffic.request import Request
from repro.traffic.telemetry import EventTrace, TimelineProbe, TrafficTelemetry

#: A dispatch policy maps (devices, request, rng, round-robin cursor) to a
#: device index.  The cursor is only meaningful to round_robin but is passed
#: uniformly so policies stay plain functions.
DispatchFn = Callable[[Sequence[SprintDevice], Request, np.random.Generator, int], int]

#: How requests are bound to devices: at arrival (legacy) or from a shared queue.
DISPATCH_MODES = ("immediate", "central_queue")

#: How the engine advances time: one heap event at a time (the reference),
#: or the batched cores where the configuration permits — the lockstep
#: numpy vector core for ungoverned immediate runs, the batch-replay event
#: core for governed/central-queue runs — with an automatic, bit-identical
#: fallback to exact where neither applies (see :mod:`repro.traffic.fastpath`).
EXECUTION_MODES = ("exact", "batched")

#: Orderings of the shared queue in central_queue mode.
QUEUE_DISCIPLINES = ("fifo", "edf")

# Event kinds, in tie-break order at equal timestamps (see module docstring).
_GRANT_RELEASE = 0
_BREAKER_RESET = 1
_DEVICE_FREE = 2
_ARRIVAL = 3
_DEADLINE = 4


def _round_robin(
    devices: Sequence[SprintDevice],
    request: Request,
    rng: np.random.Generator,
    cursor: int,
) -> int:
    return cursor % len(devices)


def _least_loaded(
    devices: Sequence[SprintDevice],
    request: Request,
    rng: np.random.Generator,
    cursor: int,
) -> int:
    """Join the device that can start the request soonest (O(n) scan).

    Ties — the common case whenever several devices are idle — go to the
    device that has served the fewest requests (then the lowest id), which
    rotates light-load traffic across the fleet instead of piling every
    request onto device 0 and turning it into a thermal hotspot.

    This is the reference implementation; the engine replaces it with the
    order-equivalent O(log n) :class:`LeastLoadedIndex` when the policy is
    named ``"least_loaded"``.  Pass this function itself as a custom policy
    to force the scan (e.g. for benchmarking the index against it).
    """
    return min(
        range(len(devices)),
        key=lambda i: (
            devices[i].start_time_for(request.arrival_s),
            devices[i].requests_served,
            i,
        ),
    )


def _thermal_aware(
    devices: Sequence[SprintDevice],
    request: Request,
    rng: np.random.Generator,
    cursor: int,
) -> int:
    """Prefer budget over pure load, without starving the queue.

    Candidates are devices whose start time is within a slack window of
    the earliest possible start; the window is 10% of the request's own
    sustained time.  Bounding the slack by the task length keeps the trade
    favourable in every regime: a successful full sprint saves
    ``(1 - 1/speedup)`` of the sustained time, so waiting up to 10% of it
    for a device with more budget is always a good exchange — whereas a
    window scaled by the queueing backlog could, under overload, wait
    longer than any sprint can ever save.  Among candidates the most
    sprint budget available at start time wins; ties fall back to the
    earliest start, then the lowest device id.
    """
    starts = [d.start_time_for(request.arrival_s) for d in devices]
    earliest = min(starts)
    slack = 0.1 * request.sustained_time_s
    best = None
    for i, device in enumerate(devices):
        if starts[i] > earliest + slack:
            continue
        key = (-device.available_fraction_at(starts[i]), starts[i], i)
        if best is None or key < best[0]:
            best = (key, i)
    assert best is not None
    return best[1]


def _random(
    devices: Sequence[SprintDevice],
    request: Request,
    rng: np.random.Generator,
    cursor: int,
) -> int:
    return int(rng.integers(len(devices)))


DISPATCH_POLICIES: dict[str, DispatchFn] = {
    "round_robin": _round_robin,
    "least_loaded": _least_loaded,
    "thermal_aware": _thermal_aware,
    "random": _random,
}


class LeastLoadedIndex:
    """O(log n) replacement for the ``least_loaded`` fleet scan.

    Two lazy-deletion heaps partition the fleet: devices known to be idle
    at or before the probe time, keyed ``(requests_served, position)``, and
    busy devices keyed ``(busy_until_s, requests_served, position)``.  Each
    device's live entry carries a version number; re-keying a device after
    it absorbs a request just bumps the version and pushes a fresh entry,
    and stale entries are discarded when they surface at a heap top.

    Picking the idle minimum when any device is idle, else the busy
    minimum, reproduces the scan's ``(start_time, requests_served, id)``
    ordering exactly: idle devices all share ``start_time == arrival`` (so
    the scan's tie-break applies verbatim), and every idle device beats
    every busy one because a busy device starts at ``busy_until > arrival``.

    Probe times must be non-decreasing (arrivals are processed in time
    order), so devices migrate monotonically from the busy heap to the idle
    heap and each serve costs amortised O(log n).
    """

    def __init__(self, devices: Sequence[SprintDevice]) -> None:
        self._devices = devices
        self._version = [0] * len(devices)
        self._idle: list[tuple[int, int, int]] = []
        # Seed from each device's *actual* state (it may carry serving
        # history); devices already free migrate to the idle heap on the
        # first probe, so a fresh fleet behaves as all-idle.
        self._busy: list[tuple[float, int, int, int]] = [
            (d.busy_until_s, d.requests_served, i, 0) for i, d in enumerate(devices)
        ]
        heapq.heapify(self._busy)

    def _advance(self, now_s: float) -> None:
        """Migrate devices whose busy period has ended into the idle heap."""
        busy = self._busy
        while busy:
            busy_until, served, pos, version = busy[0]
            if version != self._version[pos]:
                heapq.heappop(busy)
                continue
            if busy_until > now_s:
                break
            heapq.heappop(busy)
            heapq.heappush(self._idle, (served, pos, version))

    def pick(self, arrival_s: float) -> int:
        """Device position the scan would pick for an arrival at ``arrival_s``."""
        self._advance(arrival_s)
        idle = self._idle
        while idle:
            served, pos, version = idle[0]
            if version != self._version[pos]:
                heapq.heappop(idle)
                continue
            return pos
        busy = self._busy
        while True:
            busy_until, served, pos, version = busy[0]
            if version != self._version[pos]:
                heapq.heappop(busy)
                continue
            return pos

    #: Compaction floor: heaps smaller than this never rebuild, so tiny
    #: fleets don't thrash on every update.
    _COMPACT_MIN = 64

    def update(self, pos: int) -> None:
        """Re-key device ``pos`` after it absorbed a request."""
        self._version[pos] += 1
        device = self._devices[pos]
        heapq.heappush(
            self._busy,
            (device.busy_until_s, device.requests_served, pos, self._version[pos]),
        )
        # Lazy deletion leaves one stale tuple behind per re-key.  Each
        # device has exactly one live entry, so anything beyond n entries is
        # dead weight; once the stale fraction passes 50% (total > 2n) the
        # heaps are rebuilt from live device state.  Rebuilding costs O(n)
        # against the >n updates that grew the garbage, so the amortised
        # cost stays O(1) per update and heap size stays bounded at
        # max(2n, floor) over any horizon.
        total = len(self._idle) + len(self._busy)
        if total > max(2 * len(self._devices), self._COMPACT_MIN):
            self._compact()

    def push_many(self, positions: Sequence[int]) -> None:
        """Re-key a batch of devices after they absorbed requests.

        Pick-equivalent to calling :meth:`update` per position: each
        position's live entry must reflect its device's current state, and
        how the stale entries die is unobservable through :meth:`pick`.
        Small batches take the incremental per-position path; once the
        batch touches a quarter of the fleet, invalidating every touched
        entry and rebuilding both heaps in one O(n) pass is cheaper than
        the ~batch·log(n) pushes (a rebuild never changes the minimum live
        entry, so picks are unaffected).
        """
        unique = set(positions)
        if 4 * len(unique) < len(self._devices):
            for pos in unique:
                self.update(pos)
            return
        for pos in unique:
            self._version[pos] += 1
        self._compact()

    def _compact(self) -> None:
        """Rebuild both heaps with one live entry per device.

        A heap rebuild never changes which entry is the minimum live one,
        so picks after compaction are identical to picks without it — only
        the garbage goes away.  Entries still in the busy heap whose device
        has since been migrated keep their idle residency through the
        membership scan below.
        """
        live_idle = set()
        for served, pos, version in self._idle:
            if version == self._version[pos]:
                live_idle.add(pos)
        idle: list[tuple[int, int, int]] = []
        busy: list[tuple[float, int, int, int]] = []
        for pos, device in enumerate(self._devices):
            version = self._version[pos]
            if pos in live_idle:
                idle.append((device.requests_served, pos, version))
            else:
                busy.append(
                    (device.busy_until_s, device.requests_served, pos, version)
                )
        heapq.heapify(idle)
        heapq.heapify(busy)
        self._idle = idle
        self._busy = busy

    @property
    def entry_count(self) -> int:
        """Total live + stale heap entries (observability for the bound test)."""
        return len(self._idle) + len(self._busy)


@dataclass(frozen=True)
class EngineResult:
    """Everything one engine run produced, by request fate.

    ``served`` is in completion order of the underlying event processing;
    callers usually re-sort by ``request.index``.  ``rejected`` holds
    arrivals bounced by a full bounded queue, ``abandoned`` the queued
    requests whose deadline expired before a device picked them up.
    """

    served: tuple[ServedRequest, ...]
    rejected: tuple[Request, ...]
    abandoned: tuple[Request, ...]
    #: Grant accounting of a governed run (None when ungoverned/unlimited).
    governor_stats: GovernorStats | None = None
    #: Lifecycle counts, always valid — with ``keep_samples=False`` the
    #: tuples above stay empty to keep memory flat, and these counters are
    #: the only record of how many requests met each fate.
    served_count: int = 0
    rejected_count: int = 0
    abandoned_count: int = 0
    #: Timestamp of the last event the engine processed.  Event times are
    #: popped from a min-heap, so this is the latest instant the engine
    #: acted at.  In central-queue mode every device's final DEVICE_FREE
    #: is an event, so this bounds all completions; in immediate mode
    #: completions resolve inside the devices' pacers and may extend past
    #: the final arrival — callers wanting a completion-inclusive horizon
    #: take ``max(final_time_s, max completed_at_s)``
    #: (:attr:`repro.traffic.fleet.FleetResult.horizon_s` does).
    final_time_s: float = 0.0


class ServingEngine:
    """Discrete-event core shared by every fleet simulation.

    Parameters
    ----------
    devices:
        The fleet.  Device positions (list indices) are the engine's device
        identity; callers conventionally construct devices whose
        ``device_id`` equals their position.
    dispatch, policy_name:
        The immediate-mode dispatch policy and its name.
    indexed:
        Run ``least_loaded`` dispatch on the order-equivalent O(log n)
        :class:`LeastLoadedIndex` instead of calling ``dispatch``.  Default
        (``None``): substitute exactly when ``policy_name`` is
        ``"least_loaded"``.  Callers resolving policies themselves (e.g.
        :class:`~repro.traffic.fleet.FleetSimulator`) pass an explicit
        bool so a *custom* callable that happens to be named
        ``least_loaded`` still runs as-is.
    mode:
        ``"immediate"`` binds each request to a device at its arrival
        instant (the legacy behaviour, bit-identical to the old loop);
        ``"central_queue"`` holds requests in a shared queue until a device
        frees.
    discipline:
        Central-queue ordering: ``"fifo"`` (arrival order) or ``"edf"``
        (earliest absolute deadline first; deadline-free requests sort
        last, among themselves in arrival order).
    queue_bound:
        Maximum number of requests waiting in the central queue; arrivals
        beyond it are rejected (admission control).  ``None`` = unbounded;
        ``0`` = a pure loss system.  Ignored in immediate mode, where
        queueing lives on the devices.
    governor:
        Shared-power-budget :class:`~repro.traffic.governor.SprintGovernor`
        gating sprints fleet-wide.  ``None`` or an unlimited governor runs
        the exact ungoverned code path (bit-identical to PR 2).  The engine
        does not reset the governor between runs — callers owning the run
        lifecycle (:class:`~repro.traffic.fleet.FleetSimulator`) do.
    keep_samples:
        When True (default) every served/rejected/abandoned request object
        is retained in :class:`EngineResult`, the exact legacy behaviour.
        When False only the lifecycle *counts* are kept — the memory of a
        run stops growing with its horizon, and summarisation must come
        from a streaming ``telemetry`` observer instead.
    telemetry, probe, trace:
        Optional streaming observers
        (:class:`~repro.traffic.telemetry.TrafficTelemetry`,
        :class:`~repro.traffic.telemetry.TimelineProbe`,
        :class:`~repro.traffic.telemetry.EventTrace`), fed online as events
        resolve.  Observers never influence event order, float paths, or
        RNG draws, so enabling them cannot perturb a run (the golden
        fixture locks this).
    execution:
        ``"exact"`` (default) resolves every event through the heap loop.
        ``"batched"`` runs the fast cores where the configuration permits:
        the numpy lockstep core for ungoverned immediate round_robin/random
        dispatch, and the batch-replay event core for central-queue FIFO
        and governed runs whose policy declares an exact batched replay
        (greedy, cooperative_threshold, cascades of them) — all on linear
        thermal backends, with streaming observers fed from columnar
        buffers (see :mod:`repro.traffic.fastpath`).  Anything else (EDF,
        token_bucket, state-dependent policies, physics backends) falls
        back to the exact loop, so results are bit-identical either way.
        :attr:`last_run_fast_path` reports which path the latest run took,
        and :attr:`fast_path_reason` why the fast cores are (not) engaged.
    """

    def __init__(
        self,
        devices: Sequence[SprintDevice],
        dispatch: DispatchFn = _least_loaded,
        policy_name: str = "least_loaded",
        mode: str = "immediate",
        discipline: str = "fifo",
        queue_bound: int | None = None,
        indexed: bool | None = None,
        governor: SprintGovernor | None = None,
        keep_samples: bool = True,
        telemetry: TrafficTelemetry | None = None,
        probe: TimelineProbe | None = None,
        trace: EventTrace | None = None,
        execution: str = "exact",
    ) -> None:
        if not devices:
            raise ValueError("the engine needs at least one device")
        if mode not in DISPATCH_MODES:
            raise ValueError(
                f"unknown dispatch mode {mode!r}; available: {DISPATCH_MODES}"
            )
        if discipline not in QUEUE_DISCIPLINES:
            raise ValueError(
                f"unknown queue discipline {discipline!r}; "
                f"available: {QUEUE_DISCIPLINES}"
            )
        if queue_bound is not None and queue_bound < 0:
            raise ValueError("queue bound must be non-negative (or None)")
        if execution not in EXECUTION_MODES:
            raise ValueError(
                f"unknown execution mode {execution!r}; "
                f"available: {EXECUTION_MODES}"
            )
        self.devices = devices
        self.dispatch = dispatch
        self.policy_name = policy_name
        self.mode = mode
        self.discipline = discipline
        self.queue_bound = queue_bound
        self.governor = governor
        self.indexed = (policy_name == "least_loaded") if indexed is None else indexed
        self.keep_samples = keep_samples
        self.telemetry = telemetry
        self.probe = probe
        self.trace = trace
        self.execution = execution
        #: Whether the most recent run() / run_blocks() took the vector core.
        self.last_run_fast_path = False

    @property
    def fast_path_reason(self) -> str | None:
        """Why the vector core is not engaged (``None`` when it would be)."""
        from repro.traffic.fastpath import unsupported_reason

        return unsupported_reason(self)

    def _use_fast_path(self) -> bool:
        self.last_run_fast_path = (
            self.execution == "batched" and self.fast_path_reason is None
        )
        return self.last_run_fast_path

    # -- the event loop ---------------------------------------------------------------

    def run(
        self, requests: Sequence[Request], rng: np.random.Generator
    ) -> EngineResult:
        """Process ``requests`` to completion and report every request's fate.

        ``rng`` feeds immediate-mode policies that randomise (``random``);
        everything else is deterministic, so identical requests, seed, and
        engine configuration give bit-identical results.
        """
        # Request generators emit in arrival order already; detecting that
        # with an O(1)-allocation scan keeps the keyed sort (which holds an
        # O(n) key-tuple array alive) off the long-horizon flat-memory path.
        ordered = list(requests)
        if any(
            (b.arrival_s, b.index) < (a.arrival_s, a.index)
            for a, b in itertools.pairwise(ordered)
        ):
            ordered.sort(key=lambda r: (r.arrival_s, r.index))
        if self._use_fast_path():
            from repro.traffic.fastpath import run_batched

            count = len(ordered)
            times = np.fromiter(
                (r.arrival_s for r in ordered), dtype=float, count=count
            )
            demands = np.fromiter(
                (r.sustained_time_s for r in ordered), dtype=float, count=count
            )
            # Deadlines only matter to the central queue (abandonment) and
            # to telemetry (miss counting); other fast-path runs skip the
            # column entirely.
            deadline_at = None
            if self.mode != "immediate" or self.telemetry is not None:
                deadline_at = np.fromiter(
                    (r.deadline_at_s for r in ordered), dtype=float, count=count
                )
            return run_batched(
                self, [(times, demands, ordered, deadline_at, None)], rng
            )
        seq = itertools.count()
        # Entries are (time, kind, seq, payload); seq is unique, so payloads
        # are never compared.  Arrivals are fed into the heap one at a time
        # from the sorted stream (each arrival pushes its successor), so the
        # heap holds O(devices + in-flight) events rather than O(requests).
        # seq values only break ties between equal (time, kind) pairs, and
        # same-kind events are still pushed in the same relative order as
        # the old materialise-everything loop, so results are bit-identical.
        events: list[tuple[float, int, int, object]] = []

        served: list[ServedRequest] = []
        rejected: list[Request] = []
        abandoned: list[Request] = []

        keep = self.keep_samples
        telemetry = self.telemetry
        probe = self.probe
        trace = self.trace
        observing = telemetry is not None or probe is not None or trace is not None

        served_count = 0
        rejected_count = 0
        abandoned_count = 0

        if keep and not observing:
            emit_served = served.append  # the legacy hot path, untouched
        else:
            # Keyed by device_id, not list position: sharded rack engines
            # carry fleet-global ids on rack-local device lists.
            label_of = {d.device_id: d.label for d in self.devices}

            def emit_served(outcome: ServedRequest) -> None:
                nonlocal served_count
                served_count += 1
                if keep:
                    served.append(outcome)
                if telemetry is not None:
                    telemetry.observe(outcome)
                if probe is not None:
                    probe.on_served(outcome)
                if trace is not None:
                    trace.add(
                        outcome.completed_at_s,
                        "complete",
                        request_index=outcome.request.index,
                        device_id=outcome.device_id,
                        detail=outcome.latency_s,
                        label=label_of[outcome.device_id],
                    )

        def emit_rejected(request: Request, now_s: float) -> None:
            nonlocal rejected_count
            rejected_count += 1
            if keep:
                rejected.append(request)
            if telemetry is not None:
                telemetry.observe_rejected()
            if probe is not None:
                probe.on_rejected(now_s)
            if trace is not None:
                trace.add(now_s, "reject", request_index=request.index)

        def emit_abandoned(request: Request, now_s: float) -> None:
            nonlocal abandoned_count
            abandoned_count += 1
            if keep:
                abandoned.append(request)
            if telemetry is not None:
                telemetry.observe_abandoned()
            if probe is not None:
                probe.on_abandoned(now_s)
            if trace is not None:
                trace.add(now_s, "abandon", request_index=request.index)

        immediate = self.mode == "immediate"
        index = LeastLoadedIndex(self.devices) if immediate and self.indexed else None
        cursor = 0  # immediate-mode dispatch count, for round_robin

        # Governed sprinting: an unlimited governor (or none) takes the
        # ungoverned code path untouched, so those runs stay bit-identical.
        governor = self.governor
        governed = governor is not None and not governor.is_unlimited

        # Central-queue state.  The queue heap orders waiting requests by
        # the discipline key; ``waiting`` maps a live entry's token to its
        # request, and is the source of truth for queue membership (entries
        # for dispatched or abandoned requests are skipped lazily).  Every
        # device enters the idle heap through a DEVICE_FREE event at its
        # *actual* busy-until time (0.0 for a fresh device, so a fresh
        # fleet is all-idle before the first arrival; a device carrying
        # serving history only becomes assignable once it really frees).
        queue: list[tuple[float, int, Request]] = []
        waiting: dict[int, Request] = {}
        idle: list[tuple[int, int]] = []
        if not immediate:
            for pos, device in enumerate(self.devices):
                events.append(
                    (device.busy_until_s, _DEVICE_FREE, next(seq), pos)
                )
        heapq.heapify(events)
        arrival_stream = iter(ordered)
        next_arrival = next(arrival_stream, None)
        if next_arrival is not None:
            heapq.heappush(
                events, (next_arrival.arrival_s, _ARRIVAL, next(seq), next_arrival)
            )
        edf = self.discipline == "edf"

        def push_breaker_reset() -> None:
            """Schedule the recovery instant of any breaker trip that just fired.

            Drained in a loop: a hierarchical cascade governor
            (:mod:`repro.traffic.topology`) can trip breakers at several
            levels on one acquire, each with its own recovery instant.
            """
            while (reset_at := governor.pop_pending_reset()) is not None:
                heapq.heappush(events, (reset_at, _BREAKER_RESET, next(seq), None))

        def execute_governed(
            device: SprintDevice, request: Request, start_s: float, now_s: float
        ) -> ServedRequest:
            """The grant handshake: acquire before sprinting, never leak budget.

            A granted request that ends up not sprinting (the device's own
            thermal reservoir was empty) returns its grant immediately;
            a sprinting request holds it until its completion instant.
            """
            trips_before = governor.breaker_trips if observing else 0
            grant = governor.acquire(now_s)
            push_breaker_reset()
            if probe is not None:
                probe.on_grant(now_s, grant)
                if grant:
                    probe.on_in_flight_sprints(now_s, governor.active_grants)
            if trace is not None:
                trace.add(
                    now_s,
                    "grant" if grant else "deny",
                    request_index=request.index,
                    device_id=device.device_id,
                    label=device.label,
                )
            if observing and governor.breaker_trips > trips_before:
                if probe is not None:
                    probe.on_breaker_trip(now_s)
                if trace is not None:
                    trace.add(now_s, "trip", detail=governor.active_excess_draw_w)
            if immediate:
                outcome = device.serve(request, allow_sprint=grant)
            else:
                outcome = device.execute(request, start_s=start_s, allow_sprint=grant)
            if grant:
                if outcome.sprinted:
                    heapq.heappush(
                        events,
                        (outcome.completed_at_s, _GRANT_RELEASE, next(seq), None),
                    )
                else:
                    governor.release(now_s, used=False)
                    if probe is not None:
                        probe.on_in_flight_sprints(now_s, governor.active_grants)
                    if trace is not None:
                        trace.add(
                            now_s,
                            "release",
                            request_index=request.index,
                            device_id=device.device_id,
                            detail=0.0,
                            label=device.label,
                        )
            return outcome

        def start(request: Request, pos: int, now_s: float) -> None:
            device = self.devices[pos]
            if trace is not None:
                trace.add(
                    now_s,
                    "dispatch",
                    request_index=request.index,
                    device_id=pos,
                    label=device.label,
                )
            if governed and device.sprint_enabled:
                emit_served(execute_governed(device, request, now_s, now_s))
            else:
                emit_served(device.execute(request, start_s=now_s))
            heapq.heappush(
                events, (device.busy_until_s, _DEVICE_FREE, next(seq), pos)
            )

        def pop_queued() -> Request | None:
            while queue:
                _, token, request = heapq.heappop(queue)
                if token in waiting:
                    del waiting[token]
                    return request
            return None

        last_s = 0.0
        while events:
            now_s, kind, _, payload = heapq.heappop(events)
            last_s = now_s

            if kind == _ARRIVAL:
                request = payload
                next_arrival = next(arrival_stream, None)
                if next_arrival is not None:
                    heapq.heappush(
                        events,
                        (next_arrival.arrival_s, _ARRIVAL, next(seq), next_arrival),
                    )
                if probe is not None:
                    probe.on_arrival(now_s)
                if trace is not None:
                    trace.add(now_s, "arrival", request_index=request.index)
                if immediate:
                    if index is not None:
                        pos = index.pick(request.arrival_s)
                    else:
                        pos = self.dispatch(self.devices, request, rng, cursor)
                    cursor += 1
                    device = self.devices[pos]
                    if trace is not None:
                        trace.add(
                            now_s,
                            "dispatch",
                            request_index=request.index,
                            device_id=pos,
                            label=device.label,
                        )
                    if governed and device.sprint_enabled:
                        emit_served(
                            execute_governed(device, request, now_s, now_s)
                        )
                    else:
                        emit_served(device.serve(request))
                    if index is not None:
                        index.update(pos)
                elif idle:
                    _, pos = heapq.heappop(idle)
                    start(request, pos, now_s)
                elif (
                    self.queue_bound is not None
                    and len(waiting) >= self.queue_bound
                ):
                    emit_rejected(request, now_s)
                else:
                    token = next(seq)
                    key = request.deadline_at_s if edf else float(token)
                    heapq.heappush(queue, (key, token, request))
                    waiting[token] = request
                    if probe is not None:
                        probe.on_queue_depth(now_s, len(waiting))
                    if request.deadline_s is not None:
                        heapq.heappush(
                            events,
                            (request.deadline_at_s, _DEADLINE, next(seq), token),
                        )

            elif kind == _DEVICE_FREE:
                pos = payload
                request = pop_queued()
                if request is not None:
                    if probe is not None:
                        probe.on_queue_depth(now_s, len(waiting))
                    start(request, pos, now_s)
                else:
                    heapq.heappush(
                        idle, (self.devices[pos].requests_served, pos)
                    )

            elif kind == _GRANT_RELEASE:
                governor.release(now_s)
                if probe is not None:
                    probe.on_in_flight_sprints(now_s, governor.active_grants)
                if trace is not None:
                    trace.add(now_s, "release")

            elif kind == _BREAKER_RESET:
                governor.on_breaker_reset(now_s)

            else:  # _DEADLINE
                token = payload
                request = waiting.pop(token, None)
                if request is not None:
                    if probe is not None:
                        probe.on_queue_depth(now_s, len(waiting))
                    emit_abandoned(request, now_s)

        if keep and not observing:
            served_count = len(served)
        return EngineResult(
            served=tuple(served),
            rejected=tuple(rejected),
            abandoned=tuple(abandoned),
            governor_stats=governor.finalize(last_s) if governed else None,
            final_time_s=last_s,
            served_count=served_count,
            rejected_count=rejected_count,
            abandoned_count=abandoned_count,
        )

    def run_blocks(self, blocks, rng: np.random.Generator) -> EngineResult:
        """Process a stream of :class:`~repro.traffic.request.RequestBlock`s.

        The streaming counterpart of :meth:`run`: blocks must be globally
        time-ordered (as :func:`~repro.traffic.request.generate_request_blocks`
        emits them).  Under ``execution="batched"`` on a supported
        configuration the columns feed the fast cores directly — with
        ``keep_samples=False`` (and no probe or trace holding per-request
        references) peak memory is one chunk regardless of horizon.  Any
        other configuration materialises the requests and takes the exact
        loop (O(n) requests in memory), so results are bit-identical in
        every case.
        """
        if self._use_fast_path():
            from repro.traffic.fastpath import run_batched

            # Request objects exist only where something keeps a reference
            # to them (samples, timeline probe, event trace); the sketch
            # and the cores themselves run on bare columns.  Deadline
            # columns are block-scalar broadcasts, bit-identical to each
            # request's own ``deadline_at_s``.
            need_objects = (
                self.keep_samples or self.probe is not None or self.trace is not None
            )
            need_deadlines = self.mode != "immediate" or self.telemetry is not None
            stream = (
                (
                    block.arrival_s,
                    block.sustained_time_s,
                    block.to_requests() if need_objects else None,
                    (
                        block.arrival_s + block.deadline_s
                        if need_deadlines and block.deadline_s is not None
                        else None
                    ),
                    block.start_index,
                )
                for block in blocks
            )
            return run_batched(self, stream, rng)
        requests = [request for block in blocks for request in block.to_requests()]
        return self.run(requests, rng)
