"""Fleet simulator: N sprint-capable devices serving a request stream.

:class:`FleetSimulator` is a thin configuration shell around the
discrete-event core in :mod:`repro.traffic.engine`: it builds the devices,
resolves the dispatch policy, runs the engine, and packages the outcome as
a :class:`FleetResult` with per-device accounting.

Two dispatch modes are available.  *Immediate* mode binds every request to
a device at its arrival instant via a dispatch policy (``round_robin``,
``least_loaded``, ``thermal_aware``, ``random``) and lets the device's own
pacing model resolve queueing and the thermal budget; a run is fully
reproducible — the same requests and seed give bit-identical latencies.
*Central-queue* mode holds requests in a shared FIFO or
earliest-deadline-first queue and assigns them only when a device frees,
optionally bounding the queue (rejecting excess arrivals) and abandoning
queued requests whose deadline expires — the lifecycle a real serving
frontend imposes.

Either mode can be power-governed: a
:class:`~repro.traffic.governor.GovernorSpec` (or prebuilt
:class:`~repro.traffic.governor.SprintGovernor`) makes every sprint
acquire a grant from a shared fleet power budget first, and the run's
grant ledger lands in :attr:`FleetResult.governor_stats`.  The default
``"unlimited"`` governor is bypassed entirely, so ungoverned results stay
bit-identical across versions.

Pacing fidelity is a third swappable axis: a
:class:`~repro.core.thermal_backend.ThermalSpec` selects the reservoir
physics (linear rule-of-thumb, RC cooling, or PCM enthalpy) every device
paces against, and the per-request temperature/melt telemetry it produces
flows through both dispatch modes untouched into the run's
:class:`~repro.traffic.metrics.TrafficSummary`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.config import SystemConfig
from repro.core.thermal_backend import ThermalSpec
from repro.traffic.device import ServedRequest, SprintDevice
from repro.traffic.engine import (
    DISPATCH_MODES,
    DISPATCH_POLICIES,
    QUEUE_DISCIPLINES,
    DispatchFn,
    ServingEngine,
)
from repro.traffic.governor import GovernorSpec, GovernorStats, SprintGovernor
from repro.traffic.metrics import TrafficSummary, summarize
from repro.traffic.request import Request

__all__ = [
    "DISPATCH_MODES",
    "DISPATCH_POLICIES",
    "QUEUE_DISCIPLINES",
    "DeviceStats",
    "DispatchFn",
    "FleetResult",
    "FleetSimulator",
]


@dataclass(frozen=True)
class DeviceStats:
    """Per-device accounting at the end of a run."""

    device_id: int
    requests_served: int
    busy_seconds: float
    stored_heat_j: float
    #: Requests that sprinted at all on this device (partial sprints included).
    sprints_served: int = 0
    #: Mean realised sprint fullness on this device — low values flag a
    #: thermal hotspot that is nominally sprinting but mostly sustained.
    sprint_fullness_mean: float = 0.0
    #: Package temperature the device's thermal backend reported at the end
    #: of the run.
    package_temperature_c: float = 0.0
    #: Liquid PCM fraction at the end of the run (0 unless the fleet paces
    #: with the ``pcm`` backend).
    melt_fraction: float = 0.0


@dataclass(frozen=True)
class FleetResult:
    """Everything a fleet run produced."""

    served: tuple[ServedRequest, ...]
    device_stats: tuple[DeviceStats, ...]
    policy: str
    #: Arrivals bounced by a full bounded central queue (admission control).
    rejected: tuple[Request, ...] = ()
    #: Queued requests whose deadline expired before a device freed.
    abandoned: tuple[Request, ...] = ()
    #: Grant ledger of a power-governed run (None when the governor was
    #: ``unlimited`` — ungoverned runs have nothing to account).
    governor_stats: GovernorStats | None = None
    #: Last event instant the engine processed (see
    #: :attr:`repro.traffic.engine.EngineResult.final_time_s`).
    final_event_s: float = 0.0
    _summary_cache: dict = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    @property
    def latencies_s(self) -> np.ndarray:
        """Per-request latencies in request-index order."""
        return np.array([s.latency_s for s in self.served])

    @property
    def horizon_s(self) -> float:
        """Instant by which every request's fate had resolved.

        The later of the engine's final event and the last served
        completion; at this instant nothing is in flight — arrivals equal
        served + rejected + abandoned, the conservation law the invariant
        suite asserts.
        """
        completions = [s.completed_at_s for s in self.served]
        return max([self.final_event_s, *completions])

    def summary(self, slo_s: float | None = None) -> TrafficSummary:
        """Aggregate serving metrics (cached per SLO)."""
        if slo_s not in self._summary_cache:
            self._summary_cache[slo_s] = summarize(
                self.served,
                slo_s=slo_s,
                rejected_count=len(self.rejected),
                abandoned_count=len(self.abandoned),
                governor_stats=self.governor_stats,
            )
        return self._summary_cache[slo_s]


class FleetSimulator:
    """Discrete-event simulation of a fleet under a dispatch mode and policy.

    Parameters
    ----------
    config:
        Platform description shared by every device in the fleet.
    n_devices:
        Fleet size.
    policy:
        One of :data:`DISPATCH_POLICIES` (or a custom :data:`DispatchFn`).
        Only consulted in ``immediate`` mode; the name ``"least_loaded"``
        runs on the engine's O(log n) index, while passing the policy
        *function* as a custom callable forces the O(n) scan.
    mode:
        ``"immediate"`` (default, the legacy per-arrival binding) or
        ``"central_queue"`` (shared queue, assignment on device-free).
    discipline:
        Central-queue ordering, ``"fifo"`` or ``"edf"``.
    queue_bound:
        Central-queue admission limit (``None`` = unbounded).
    governor:
        Fleet power-budget governance: a policy name (only ``"unlimited"``
        works bare — the other policies need knobs), a
        :class:`~repro.traffic.governor.GovernorSpec`, or a prebuilt
        :class:`~repro.traffic.governor.SprintGovernor` instance.  The
        governor is reset at the start of every :meth:`run`, like the
        devices.
    thermal:
        Reservoir fidelity of every device's package: a backend name from
        :data:`~repro.core.thermal_backend.THERMAL_BACKENDS` or a
        :class:`~repro.core.thermal_backend.ThermalSpec`.  Each device
        builds its own backend instance from the spec, so fleets never
        share thermal state.  The default ``"linear"`` backend is
        bit-identical to the pre-backend fleet (regression-locked).
    sprint_speedup, sprint_enabled, refuse_partial_sprints:
        Forwarded to each :class:`~repro.traffic.device.SprintDevice`.
    """

    def __init__(
        self,
        config: SystemConfig,
        n_devices: int,
        policy: str | DispatchFn = "least_loaded",
        sprint_speedup: float = 10.0,
        sprint_enabled: bool = True,
        refuse_partial_sprints: bool = False,
        mode: str = "immediate",
        discipline: str = "fifo",
        queue_bound: int | None = None,
        governor: str | GovernorSpec | SprintGovernor = "unlimited",
        thermal: str | ThermalSpec = "linear",
    ) -> None:
        if n_devices < 1:
            raise ValueError("a fleet needs at least one device")
        if isinstance(policy, str):
            if policy not in DISPATCH_POLICIES:
                raise ValueError(
                    f"unknown dispatch policy {policy!r}; "
                    f"available: {sorted(DISPATCH_POLICIES)}"
                )
            self.policy_name = policy
            self._dispatch = DISPATCH_POLICIES[policy]
            # Only the *named* policy runs on the engine's index; a custom
            # callable — even one named "least_loaded" — must be called.
            self._indexed = policy == "least_loaded"
        else:
            self.policy_name = getattr(policy, "__name__", "custom")
            self._dispatch = policy
            self._indexed = False
        if isinstance(governor, str):
            governor = GovernorSpec(policy=governor)
        if isinstance(governor, GovernorSpec):
            self.governor_spec: GovernorSpec | None = governor
            self.governor = governor.build(config)
        elif isinstance(governor, SprintGovernor):
            self.governor_spec = None
            self.governor = governor
        else:
            raise TypeError(
                "governor must be a policy name, a GovernorSpec, or a "
                f"SprintGovernor, not {type(governor).__name__}"
            )
        if isinstance(thermal, str):
            thermal = ThermalSpec(backend=thermal)
        if not isinstance(thermal, ThermalSpec):
            raise TypeError(
                "thermal must be a backend name or a ThermalSpec, "
                f"not {type(thermal).__name__}"
            )
        self.thermal_spec = thermal
        self.config = config
        self.mode = mode
        self.discipline = discipline
        self.queue_bound = queue_bound
        self.devices = [
            SprintDevice(
                config,
                device_id=i,
                sprint_speedup=sprint_speedup,
                sprint_enabled=sprint_enabled,
                refuse_partial_sprints=refuse_partial_sprints,
                thermal=thermal,
            )
            for i in range(n_devices)
        ]
        # Validate mode/discipline/bound eagerly (fail at construction, not run).
        self._make_engine()

    def _make_engine(self) -> ServingEngine:
        return ServingEngine(
            self.devices,
            dispatch=self._dispatch,
            policy_name=self.policy_name,
            mode=self.mode,
            discipline=self.discipline,
            queue_bound=self.queue_bound,
            indexed=self._indexed,
            governor=self.governor,
        )

    def run(
        self,
        requests: Sequence[Request],
        seed: int | np.random.SeedSequence = 0,
    ) -> FleetResult:
        """Serve ``requests`` and collect results.

        ``seed`` only feeds policies that randomise (``random``); the
        deterministic policies ignore it, and two runs with identical
        requests and seed produce identical per-request latencies.  An
        empty request stream is a valid (empty) run, so sweeps over sparse
        arrival processes never crash.
        """
        for device in self.devices:
            device.reset()
        self.governor.reset()
        rng = np.random.default_rng(seed)
        outcome = self._make_engine().run(requests, rng)
        served = sorted(outcome.served, key=lambda s: s.request.index)
        stats = tuple(
            DeviceStats(
                device_id=d.device_id,
                requests_served=d.requests_served,
                busy_seconds=d.busy_seconds,
                stored_heat_j=d.pacer.stored_heat_j,
                sprints_served=d.sprints_served,
                sprint_fullness_mean=d.sprint_fullness_mean,
                package_temperature_c=d.thermal_backend.temperature_c,
                melt_fraction=d.thermal_backend.melt_fraction,
            )
            for d in self.devices
        )
        return FleetResult(
            served=tuple(served),
            device_stats=stats,
            policy=self.policy_name,
            rejected=outcome.rejected,
            abandoned=outcome.abandoned,
            governor_stats=outcome.governor_stats,
            final_event_s=outcome.final_time_s,
        )
