"""Fleet simulator: N sprint-capable devices serving a request stream.

:class:`FleetSimulator` is a thin configuration shell around the
discrete-event core in :mod:`repro.traffic.engine`: it builds the devices,
resolves the dispatch policy, runs the engine, and packages the outcome as
a :class:`FleetResult` with per-device accounting.

Two dispatch modes are available.  *Immediate* mode binds every request to
a device at its arrival instant via a dispatch policy (``round_robin``,
``least_loaded``, ``thermal_aware``, ``random``) and lets the device's own
pacing model resolve queueing and the thermal budget; a run is fully
reproducible — the same requests and seed give bit-identical latencies.
*Central-queue* mode holds requests in a shared FIFO or
earliest-deadline-first queue and assigns them only when a device frees,
optionally bounding the queue (rejecting excess arrivals) and abandoning
queued requests whose deadline expires — the lifecycle a real serving
frontend imposes.

Either mode can be power-governed: a
:class:`~repro.traffic.governor.GovernorSpec` (or prebuilt
:class:`~repro.traffic.governor.SprintGovernor`) makes every sprint
acquire a grant from a shared fleet power budget first, and the run's
grant ledger lands in :attr:`FleetResult.governor_stats`.  The default
``"unlimited"`` governor is bypassed entirely, so ungoverned results stay
bit-identical across versions.

Pacing fidelity is a third swappable axis: a
:class:`~repro.core.thermal_backend.ThermalSpec` selects the reservoir
physics (linear rule-of-thumb, RC cooling, or PCM enthalpy) every device
paces against, and the per-request temperature/melt telemetry it produces
flows through both dispatch modes untouched into the run's
:class:`~repro.traffic.metrics.TrafficSummary`.

A fourth axis is fleet *shape*: passing a
:class:`~repro.traffic.topology.TopologySpec` instead of ``n_devices``
arranges the devices into racks, rows, and a datacenter, each level with
its own power budget, and runs each rack as an independent shard (see
:mod:`repro.traffic.shard`).

Usage — a lightly loaded two-device fleet sprints every request:

>>> from repro.core.config import SystemConfig
>>> from repro.traffic.arrivals import DeterministicArrivals
>>> from repro.traffic.fleet import FleetSimulator
>>> from repro.traffic.request import FixedService, generate_requests
>>> reqs = generate_requests(
...     DeterministicArrivals(30.0), FixedService(5.0), n=4, seed=0
... )
>>> fleet = FleetSimulator(SystemConfig.paper_default(), n_devices=2)
>>> summary = fleet.run(reqs).summary()
>>> summary.request_count, summary.sprint_fraction
(4, 1.0)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.config import SystemConfig
from repro.core.thermal_backend import ThermalSpec
from repro.traffic.arrivals import DEFAULT_CHUNK, ArrivalProcess
from repro.traffic.device import ServedRequest, SprintDevice
from repro.traffic.engine import (
    DISPATCH_MODES,
    DISPATCH_POLICIES,
    EXECUTION_MODES,
    QUEUE_DISCIPLINES,
    DispatchFn,
    ServingEngine,
)
from repro.traffic.fluid import FluidFleetModel, FluidResult
from repro.traffic.governor import GovernorSpec, GovernorStats, SprintGovernor
from repro.traffic.metrics import TrafficSummary, summarize
from repro.traffic.request import Request, ServiceModel, generate_request_blocks
from repro.traffic.telemetry import RunTelemetry, TelemetrySpec
from repro.traffic.topology import TopologySpec, TopologyStats

__all__ = [
    "DISPATCH_MODES",
    "DISPATCH_POLICIES",
    "EXECUTION_MODES",
    "FLEET_MODES",
    "QUEUE_DISCIPLINES",
    "DeviceStats",
    "DispatchFn",
    "FleetResult",
    "FleetSimulator",
]

#: Simulation modes a fleet can run: the two discrete-event dispatch
#: modes (every request simulated) plus the calibrated fluid limit
#: (:mod:`repro.traffic.fluid` — deterministic mean-field integration,
#: accuracy per :data:`repro.traffic.fluid.FLUID_ACCURACY_CONTRACT`).
FLEET_MODES = DISPATCH_MODES + ("fluid",)


def resolve_telemetry(
    telemetry: TelemetrySpec | bool | None, keep_samples: bool
) -> TelemetrySpec | None:
    """Resolve the user-facing telemetry knob to a concrete spec.

    ``None`` means "whatever keeps summaries possible": no instruments
    while samples are kept (the legacy zero-overhead default), the default
    sketch when they are not.  ``True``/``False`` force the default spec
    on or everything off, and a :class:`TelemetrySpec` passes through.
    """
    if isinstance(telemetry, TelemetrySpec):
        return telemetry
    if telemetry is None:
        return None if keep_samples else TelemetrySpec()
    if telemetry is True:
        return TelemetrySpec()
    if telemetry is False:
        return None
    raise TypeError(
        "telemetry must be a TelemetrySpec, a bool, or None, "
        f"not {type(telemetry).__name__}"
    )


@dataclass(frozen=True)
class DeviceStats:
    """Per-device accounting at the end of a run."""

    device_id: int
    requests_served: int
    busy_seconds: float
    stored_heat_j: float
    #: Stable hierarchical identity — ``row0/rack2/dev5`` in a topology
    #: fleet, ``dev{device_id}`` in a flat one ("" on results produced
    #: before labels existed).  ``device_id`` stays the flat integer id.
    device_label: str = ""
    #: Requests that sprinted at all on this device (partial sprints included).
    sprints_served: int = 0
    #: Mean realised sprint fullness on this device — low values flag a
    #: thermal hotspot that is nominally sprinting but mostly sustained.
    sprint_fullness_mean: float = 0.0
    #: Package temperature the device's thermal backend reported at the end
    #: of the run.
    package_temperature_c: float = 0.0
    #: Liquid PCM fraction at the end of the run (0 unless the fleet paces
    #: with the ``pcm`` backend).
    melt_fraction: float = 0.0
    #: Running peaks over the whole run (maintained in O(1) on the device,
    #: so hotspot identification survives ``keep_samples=False`` runs).
    peak_temperature_c: float = 0.0
    peak_melt_fraction: float = 0.0
    peak_stored_heat_j: float = 0.0


@dataclass(frozen=True)
class FleetResult:
    """Everything a fleet run produced."""

    served: tuple[ServedRequest, ...]
    device_stats: tuple[DeviceStats, ...]
    policy: str
    #: Arrivals bounced by a full bounded central queue (admission control).
    rejected: tuple[Request, ...] = ()
    #: Queued requests whose deadline expired before a device freed.
    abandoned: tuple[Request, ...] = ()
    #: Grant ledger of a power-governed run (None when the governor was
    #: ``unlimited`` — ungoverned runs have nothing to account).
    governor_stats: GovernorStats | None = None
    #: Last event instant the engine processed (see
    #: :attr:`repro.traffic.engine.EngineResult.final_time_s`).
    final_event_s: float = 0.0
    #: What the run's telemetry instruments produced (None when the run
    #: kept samples and no instruments were requested).
    telemetry: RunTelemetry | None = None
    #: Lifecycle counts, always valid — with ``keep_samples=False`` the
    #: ``served``/``rejected``/``abandoned`` tuples stay empty and these
    #: are the only record of each fate's cardinality.
    served_count: int = 0
    rejected_count: int = 0
    abandoned_count: int = 0
    #: Per-level grant ledgers of a hierarchical (topology) run — None on
    #: flat fleets and on topology runs with nothing governed anywhere.
    topology_stats: TopologyStats | None = None
    #: Whether the run took the batched fast cores (always False under
    #: ``engine="exact"``; on sharded runs, True only when *every* rack
    #: did).  Results are bit-identical either way — this is visibility,
    #: not semantics.
    fast_path: bool = False
    #: Why the fast cores were not engaged (None when they were, or when
    #: nothing asked for them).  On sharded runs, the first rack's reason.
    fast_path_reason: str | None = None
    _summary_cache: dict = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    @property
    def latencies_s(self) -> np.ndarray:
        """Per-request latencies in request-index order.

        Empty when the run dropped samples (``keep_samples=False``) — tail
        statistics then live in ``telemetry.stream``.
        """
        return np.array([s.latency_s for s in self.served])

    @property
    def horizon_s(self) -> float:
        """Instant by which every request's fate had resolved.

        The later of the engine's final event and the last served
        completion; at this instant nothing is in flight — arrivals equal
        served + rejected + abandoned, the conservation law the invariant
        suite asserts.
        """
        completions = [s.completed_at_s for s in self.served]
        if self.telemetry is not None and self.telemetry.stream is not None:
            stream = self.telemetry.stream
            if stream.request_count:
                completions.append(stream.last_completion_s)
        return max([self.final_event_s, *completions])

    def summary(self, slo_s: float | None = None) -> TrafficSummary:
        """Aggregate serving metrics (cached per SLO).

        Computed exactly from the retained samples when the run kept them
        (``telemetry_source == "samples"``, bit-identical to every prior
        version); from the streaming telemetry otherwise
        (``telemetry_source == "sketch"``, percentiles within the sketch's
        rank-error bound).  A run that kept neither cannot be summarised.
        """
        if slo_s not in self._summary_cache:
            stream = self.telemetry.stream if self.telemetry is not None else None
            if self.served or stream is None:
                if not self.served and self.served_count:
                    raise ValueError(
                        "this run kept no samples and no telemetry stream; "
                        "enable keep_samples or a TelemetrySpec with "
                        "sketch=True to summarise it"
                    )
                self._summary_cache[slo_s] = summarize(
                    self.served,
                    slo_s=slo_s,
                    rejected_count=len(self.rejected) or self.rejected_count,
                    abandoned_count=len(self.abandoned) or self.abandoned_count,
                    governor_stats=self.governor_stats,
                )
            else:
                self._summary_cache[slo_s] = stream.summarize(
                    slo_s=slo_s, governor_stats=self.governor_stats
                )
        return self._summary_cache[slo_s]


class FleetSimulator:
    """Discrete-event simulation of a fleet under a dispatch mode and policy.

    Parameters
    ----------
    config:
        Platform description shared by every device in the fleet.
    n_devices:
        Fleet size.
    policy:
        One of :data:`DISPATCH_POLICIES` (or a custom :data:`DispatchFn`).
        Only consulted in ``immediate`` mode; the name ``"least_loaded"``
        runs on the engine's O(log n) index, while passing the policy
        *function* as a custom callable forces the O(n) scan.
    mode:
        ``"immediate"`` (default, the legacy per-arrival binding) or
        ``"central_queue"`` (shared queue, assignment on device-free).
    discipline:
        Central-queue ordering, ``"fifo"`` or ``"edf"``.
    queue_bound:
        Central-queue admission limit (``None`` = unbounded).
    governor:
        Fleet power-budget governance: a policy name (only ``"unlimited"``
        works bare — the other policies need knobs), a
        :class:`~repro.traffic.governor.GovernorSpec`, or a prebuilt
        :class:`~repro.traffic.governor.SprintGovernor` instance.  The
        governor is reset at the start of every :meth:`run`, like the
        devices.
    thermal:
        Reservoir fidelity of every device's package: a backend name from
        :data:`~repro.core.thermal_backend.THERMAL_BACKENDS` or a
        :class:`~repro.core.thermal_backend.ThermalSpec`.  Each device
        builds its own backend instance from the spec, so fleets never
        share thermal state.  The default ``"linear"`` backend is
        bit-identical to the pre-backend fleet (regression-locked).
    sprint_speedup, sprint_enabled, refuse_partial_sprints:
        Forwarded to each :class:`~repro.traffic.device.SprintDevice`.
    keep_samples:
        When True (default) the run retains every served/rejected/
        abandoned request object, the exact legacy behaviour.  When False
        the run's memory stays flat over any horizon: only lifecycle
        counts and the streaming telemetry survive, and
        :meth:`FleetResult.summary` comes from the quantile sketch.
    telemetry:
        What streaming instruments to run
        (:class:`~repro.traffic.telemetry.TelemetrySpec`, a bool for the
        default spec on/off, or ``None`` to auto-enable the sketch exactly
        when ``keep_samples=False`` — see :func:`resolve_telemetry`).
        Fresh instruments are built per :meth:`run`; observers never
        perturb simulation results.
    """

    def __init__(
        self,
        config: SystemConfig,
        n_devices: int | None = None,
        policy: str | DispatchFn = "least_loaded",
        sprint_speedup: float = 10.0,
        sprint_enabled: bool = True,
        refuse_partial_sprints: bool = False,
        mode: str = "immediate",
        discipline: str = "fifo",
        queue_bound: int | None = None,
        governor: str | GovernorSpec | SprintGovernor = "unlimited",
        thermal: str | ThermalSpec = "linear",
        keep_samples: bool = True,
        telemetry: TelemetrySpec | bool | None = None,
        engine: str = "exact",
        topology: TopologySpec | None = None,
        shard_workers: int = 1,
    ) -> None:
        device_labels: list[str] | None = None
        self.topology = topology
        self.shard_workers = shard_workers
        self._sharded = False
        if topology is not None:
            # Budgets live on the topology's nodes; a second fleet-level
            # governor would be ambiguous (which level is it?).
            ungoverned = governor == "unlimited" or (
                isinstance(governor, GovernorSpec) and governor.policy == "unlimited"
            )
            if not ungoverned:
                raise ValueError(
                    "a topology fleet takes its budgets from the topology "
                    "spec; leave governor at 'unlimited'"
                )
            if mode == "fluid":
                raise ValueError(
                    "fluid mode has no topology; it models one "
                    "work-conserving pool"
                )
            if shard_workers < 1:
                raise ValueError("shard worker count must be at least 1")
            n_devices = topology.validate_devices(n_devices)
            if topology.is_flat:
                # The regression-locked flat path: one rack, ungoverned
                # parents — the rack's governor IS the fleet governor and
                # the single engine runs exactly as without a topology
                # (bit-identity locked by tests); only the hierarchical
                # device labels differ.
                _, _, path, rack = next(topology.iter_racks())
                governor = rack.governor
                if rack.sprint_enabled is not None:
                    sprint_enabled = rack.sprint_enabled
                if rack.sprint_speedup is not None:
                    sprint_speedup = rack.sprint_speedup
                if rack.thermal is not None:
                    thermal = rack.thermal
                device_labels = [f"{path}/dev{i}" for i in range(n_devices)]
            else:
                if not isinstance(policy, str):
                    raise ValueError(
                        "sharded topology runs need a named dispatch policy "
                        "(shard jobs cross process boundaries)"
                    )
                self._sharded = True
        elif n_devices is None:
            raise ValueError("a fleet needs n_devices or a topology")
        if n_devices < 1:
            raise ValueError("a fleet needs at least one device")
        if mode not in FLEET_MODES:
            raise ValueError(
                f"unknown fleet mode {mode!r}; available: {FLEET_MODES}"
            )
        if engine not in EXECUTION_MODES:
            raise ValueError(
                f"unknown engine execution {engine!r}; "
                f"available: {EXECUTION_MODES}"
            )
        if isinstance(policy, str):
            if policy not in DISPATCH_POLICIES:
                raise ValueError(
                    f"unknown dispatch policy {policy!r}; "
                    f"available: {sorted(DISPATCH_POLICIES)}"
                )
            self.policy_name = policy
            self._dispatch = DISPATCH_POLICIES[policy]
            # Only the *named* policy runs on the engine's index; a custom
            # callable — even one named "least_loaded" — must be called.
            self._indexed = policy == "least_loaded"
        else:
            self.policy_name = getattr(policy, "__name__", "custom")
            self._dispatch = policy
            self._indexed = False
        if isinstance(governor, str):
            governor = GovernorSpec(policy=governor)
        if isinstance(governor, GovernorSpec):
            self.governor_spec: GovernorSpec | None = governor
            self.governor = governor.build(config)
        elif isinstance(governor, SprintGovernor):
            self.governor_spec = None
            self.governor = governor
        else:
            raise TypeError(
                "governor must be a policy name, a GovernorSpec, or a "
                f"SprintGovernor, not {type(governor).__name__}"
            )
        if isinstance(thermal, str):
            thermal = ThermalSpec(backend=thermal)
        if not isinstance(thermal, ThermalSpec):
            raise TypeError(
                "thermal must be a backend name or a ThermalSpec, "
                f"not {type(thermal).__name__}"
            )
        self.thermal_spec = thermal
        self.config = config
        self.mode = mode
        self.discipline = discipline
        self.queue_bound = queue_bound
        self.keep_samples = keep_samples
        self.execution = engine
        self.sprint_speedup = sprint_speedup
        self.sprint_enabled = sprint_enabled
        self.refuse_partial_sprints = refuse_partial_sprints
        self._fluid: FluidFleetModel | None = None
        if mode == "fluid":
            # The fluid limit is work-conserving across the whole pool and
            # ungoverned by construction; knobs it cannot honour are
            # rejected rather than silently ignored.
            if not self.governor.is_unlimited:
                raise ValueError(
                    "fluid mode is ungoverned; use the unlimited governor"
                )
            if queue_bound is not None:
                raise ValueError("fluid mode has no bounded central queue")
            if telemetry not in (None, False):
                raise ValueError(
                    "fluid mode carries no streaming instruments; its result "
                    "arrays are already the full trajectory"
                )
            self.telemetry_spec = None
            self.devices: list[SprintDevice] = []
            self._fluid = FluidFleetModel(
                config,
                n_devices=n_devices,
                sprint_speedup=sprint_speedup,
                sprint_enabled=sprint_enabled,
                refuse_partial_sprints=refuse_partial_sprints,
                thermal=thermal,
            )
            return
        self.telemetry_spec = resolve_telemetry(telemetry, keep_samples)
        if self._sharded:
            # Devices live inside each rack's shard job; validate here the
            # queue knobs the engine would have rejected at construction.
            if discipline not in QUEUE_DISCIPLINES:
                raise ValueError(
                    f"unknown queue discipline {discipline!r}; "
                    f"available: {QUEUE_DISCIPLINES}"
                )
            if queue_bound is not None and queue_bound < 0:
                raise ValueError("queue bound must be non-negative (or None)")
            self.devices = []
            return
        self.devices = [
            SprintDevice(
                config,
                device_id=i,
                sprint_speedup=sprint_speedup,
                sprint_enabled=sprint_enabled,
                refuse_partial_sprints=refuse_partial_sprints,
                thermal=thermal,
                label=None if device_labels is None else device_labels[i],
            )
            for i in range(n_devices)
        ]
        # Validate mode/discipline/bound eagerly (fail at construction, not run).
        self._make_engine()

    def _make_engine(self, stream=None, probe=None, trace=None) -> ServingEngine:
        return ServingEngine(
            self.devices,
            dispatch=self._dispatch,
            policy_name=self.policy_name,
            mode=self.mode,
            discipline=self.discipline,
            queue_bound=self.queue_bound,
            indexed=self._indexed,
            governor=self.governor,
            keep_samples=self.keep_samples,
            telemetry=stream,
            probe=probe,
            trace=trace,
            execution=self.execution,
        )

    def _prepare_observers(self):
        spec = self.telemetry_spec
        stream = probe = trace = None
        if spec is not None:
            stream = spec.build_stream()
            probe = spec.build_probe(excess_power_w=self.governor.excess_power_w)
            trace = spec.build_trace()
        return stream, probe, trace

    def run(
        self,
        requests: Sequence[Request],
        seed: int | np.random.SeedSequence = 0,
    ) -> FleetResult | FluidResult:
        """Serve ``requests`` and collect results.

        ``seed`` only feeds policies that randomise (``random``); the
        deterministic policies ignore it, and two runs with identical
        requests and seed produce identical per-request latencies.  An
        empty request stream is a valid (empty) run, so sweeps over sparse
        arrival processes never crash.  A ``mode="fluid"`` fleet returns a
        :class:`~repro.traffic.fluid.FluidResult` instead (same
        ``summary()`` surface, array-backed).  A non-flat ``topology``
        fleet runs sharded (:func:`repro.traffic.shard.run_sharded`) —
        bit-identical for any ``shard_workers`` value.
        """
        if self._sharded:
            from repro.traffic.shard import run_sharded

            return run_sharded(self, requests, seed, self.shard_workers)
        if self._fluid is not None:
            arrival = np.array([r.arrival_s for r in requests], dtype=float)
            sustained = np.array([r.sustained_time_s for r in requests], dtype=float)
            deadlines = np.array([r.deadline_at_s for r in requests], dtype=float)
            if arrival.size == 0 or np.all(np.isinf(deadlines)):
                deadlines = None
            return self._fluid.run(arrival, sustained, deadline_at_s=deadlines)
        for device in self.devices:
            device.reset()
        self.governor.reset()
        rng = np.random.default_rng(seed)
        stream, probe, trace = self._prepare_observers()
        engine = self._make_engine(stream=stream, probe=probe, trace=trace)
        outcome = engine.run(requests, rng)
        return self._package(outcome, stream, probe, trace, engine)

    def run_stream(
        self,
        arrivals: ArrivalProcess,
        service: ServiceModel,
        n_requests: int,
        *,
        request_seed: int | np.random.SeedSequence = 0,
        run_seed: int | np.random.SeedSequence = 0,
        deadline_s: float | None = None,
        chunk_size: int = DEFAULT_CHUNK,
    ) -> FleetResult | FluidResult:
        """Generate and serve a request stream without materialising it.

        The streaming counterpart of :func:`generate_requests` +
        :meth:`run`: arrival and service draws are produced as numpy
        blocks (:func:`repro.traffic.request.generate_request_blocks`,
        bit-identical to the scalar stream) and fed straight to the
        engine.  On a fast-path-eligible fleet
        (:attr:`~repro.traffic.engine.ServingEngine.fast_path_reason` is
        ``None``) with ``keep_samples=False`` the whole run stays in
        vectorized block processing with flat memory; otherwise requests
        are materialised chunk by chunk and served exactly.  A
        ``mode="fluid"`` fleet integrates the blocks' arrays directly.
        A non-flat ``topology`` fleet materialises the stream and runs
        sharded — rack dispatch plans over the whole stream upfront.
        """
        if self._sharded:
            from repro.traffic.shard import run_sharded

            requests = [
                request
                for block in generate_request_blocks(
                    arrivals,
                    service,
                    n_requests,
                    seed=request_seed,
                    deadline_s=deadline_s,
                    chunk_size=chunk_size,
                )
                for request in block.to_requests()
            ]
            return run_sharded(self, requests, run_seed, self.shard_workers)
        if self._fluid is not None:
            times = []
            demands = []
            for block in generate_request_blocks(
                arrivals,
                service,
                n_requests,
                seed=request_seed,
                deadline_s=deadline_s,
                chunk_size=chunk_size,
            ):
                times.append(block.arrival_s)
                demands.append(block.sustained_time_s)
            arrival = np.concatenate(times)
            sustained = np.concatenate(demands)
            deadlines = None
            if deadline_s is not None:
                deadlines = arrival + deadline_s
            return self._fluid.run(arrival, sustained, deadline_at_s=deadlines)
        for device in self.devices:
            device.reset()
        self.governor.reset()
        rng = np.random.default_rng(run_seed)
        stream, probe, trace = self._prepare_observers()
        engine = self._make_engine(stream=stream, probe=probe, trace=trace)
        blocks = generate_request_blocks(
            arrivals,
            service,
            n_requests,
            seed=request_seed,
            deadline_s=deadline_s,
            chunk_size=chunk_size,
        )
        outcome = engine.run_blocks(blocks, rng)
        return self._package(outcome, stream, probe, trace, engine)

    def _package(
        self, outcome, stream, probe, trace, engine: ServingEngine
    ) -> FleetResult:
        served = sorted(outcome.served, key=lambda s: s.request.index)
        telemetry = None
        if stream is not None or probe is not None or trace is not None:
            horizon = [outcome.final_time_s]
            if served:
                horizon.append(max(s.completed_at_s for s in served))
            if stream is not None and stream.request_count:
                horizon.append(stream.last_completion_s)
            telemetry = RunTelemetry(
                stream=stream,
                timeline=None if probe is None else probe.finalize(max(horizon)),
                trace=trace,
            )
        stats = tuple(
            DeviceStats(
                device_id=d.device_id,
                device_label=d.label,
                requests_served=d.requests_served,
                busy_seconds=d.busy_seconds,
                stored_heat_j=d.pacer.stored_heat_j,
                sprints_served=d.sprints_served,
                sprint_fullness_mean=d.sprint_fullness_mean,
                package_temperature_c=d.thermal_backend.temperature_c,
                melt_fraction=d.thermal_backend.melt_fraction,
                peak_temperature_c=d.peak_temperature_c,
                peak_melt_fraction=d.peak_melt_fraction,
                peak_stored_heat_j=d.peak_stored_heat_j,
            )
            for d in self.devices
        )
        return FleetResult(
            served=tuple(served),
            device_stats=stats,
            policy=self.policy_name,
            rejected=outcome.rejected,
            abandoned=outcome.abandoned,
            governor_stats=outcome.governor_stats,
            final_event_s=outcome.final_time_s,
            telemetry=telemetry,
            served_count=outcome.served_count,
            rejected_count=outcome.rejected_count,
            abandoned_count=outcome.abandoned_count,
            fast_path=engine.last_run_fast_path,
            fast_path_reason=engine.fast_path_reason,
        )
