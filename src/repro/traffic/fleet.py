"""Fleet simulator: N sprint-capable devices serving a request stream.

The simulator is event-driven in the simplest useful sense: requests are
processed in arrival order, a dispatch policy picks a device for each, and
the device's own pacing model resolves queueing (a request dispatched to a
busy device waits behind it) and the thermal budget (a request dispatched
to a hot device may not get to sprint).  Because every device serialises
its queue and the policies break ties deterministically, a run is fully
reproducible: the same requests and seed give bit-identical latencies.

Dispatch policies
-----------------
* ``round_robin`` — cycle through devices regardless of state,
* ``least_loaded`` — the device that can start the request soonest,
* ``thermal_aware`` — among the devices that can start soonest (within a
  slack window), the one with the most sprint budget left at start time,
* ``random`` — uniform choice, seeded by the run seed (the usual strawman).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.config import SystemConfig
from repro.traffic.device import ServedRequest, SprintDevice
from repro.traffic.metrics import TrafficSummary, summarize
from repro.traffic.request import Request

#: A dispatch policy maps (devices, request, rng, round-robin cursor) to a
#: device index.  The cursor is only meaningful to round_robin but is passed
#: uniformly so policies stay plain functions.
DispatchFn = Callable[[Sequence[SprintDevice], Request, np.random.Generator, int], int]


def _round_robin(
    devices: Sequence[SprintDevice],
    request: Request,
    rng: np.random.Generator,
    cursor: int,
) -> int:
    return cursor % len(devices)


def _least_loaded(
    devices: Sequence[SprintDevice],
    request: Request,
    rng: np.random.Generator,
    cursor: int,
) -> int:
    """Join the device that can start soonest.

    Ties — the common case whenever several devices are idle — go to the
    device that has served the fewest requests (then the lowest id), which
    rotates light-load traffic across the fleet instead of piling every
    request onto device 0 and turning it into a thermal hotspot.
    """
    return min(
        range(len(devices)),
        key=lambda i: (
            devices[i].start_time_for(request.arrival_s),
            devices[i].requests_served,
            i,
        ),
    )


def _thermal_aware(
    devices: Sequence[SprintDevice],
    request: Request,
    rng: np.random.Generator,
    cursor: int,
) -> int:
    """Prefer budget over pure load, without starving the queue.

    Candidates are devices whose start time is within a slack window of
    the earliest possible start; the window is 10% of the request's own
    sustained time.  Bounding the slack by the task length keeps the trade
    favourable in every regime: a successful full sprint saves
    ``(1 - 1/speedup)`` of the sustained time, so waiting up to 10% of it
    for a device with more budget is always a good exchange — whereas a
    window scaled by the queueing backlog could, under overload, wait
    longer than any sprint can ever save.  Among candidates the most
    sprint budget available at start time wins; ties fall back to the
    earliest start, then the lowest device id.
    """
    starts = [d.start_time_for(request.arrival_s) for d in devices]
    earliest = min(starts)
    slack = 0.1 * request.sustained_time_s
    best = None
    for i, device in enumerate(devices):
        if starts[i] > earliest + slack:
            continue
        key = (-device.available_fraction_at(starts[i]), starts[i], i)
        if best is None or key < best[0]:
            best = (key, i)
    assert best is not None
    return best[1]


def _random(
    devices: Sequence[SprintDevice],
    request: Request,
    rng: np.random.Generator,
    cursor: int,
) -> int:
    return int(rng.integers(len(devices)))


DISPATCH_POLICIES: dict[str, DispatchFn] = {
    "round_robin": _round_robin,
    "least_loaded": _least_loaded,
    "thermal_aware": _thermal_aware,
    "random": _random,
}


@dataclass(frozen=True)
class DeviceStats:
    """Per-device accounting at the end of a run."""

    device_id: int
    requests_served: int
    busy_seconds: float
    stored_heat_j: float


@dataclass(frozen=True)
class FleetResult:
    """Everything a fleet run produced."""

    served: tuple[ServedRequest, ...]
    device_stats: tuple[DeviceStats, ...]
    policy: str
    _summary_cache: dict = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    @property
    def latencies_s(self) -> np.ndarray:
        """Per-request latencies in request-index order."""
        return np.array([s.latency_s for s in self.served])

    def summary(self, slo_s: float | None = None) -> TrafficSummary:
        """Aggregate serving metrics (cached per SLO)."""
        if slo_s not in self._summary_cache:
            self._summary_cache[slo_s] = summarize(self.served, slo_s=slo_s)
        return self._summary_cache[slo_s]


class FleetSimulator:
    """Discrete-event simulation of a fleet under a dispatch policy.

    Parameters
    ----------
    config:
        Platform description shared by every device in the fleet.
    n_devices:
        Fleet size.
    policy:
        One of :data:`DISPATCH_POLICIES` (or a custom :data:`DispatchFn`).
    sprint_speedup, sprint_enabled, refuse_partial_sprints:
        Forwarded to each :class:`~repro.traffic.device.SprintDevice`.
    """

    def __init__(
        self,
        config: SystemConfig,
        n_devices: int,
        policy: str | DispatchFn = "least_loaded",
        sprint_speedup: float = 10.0,
        sprint_enabled: bool = True,
        refuse_partial_sprints: bool = False,
    ) -> None:
        if n_devices < 1:
            raise ValueError("a fleet needs at least one device")
        if isinstance(policy, str):
            if policy not in DISPATCH_POLICIES:
                raise ValueError(
                    f"unknown dispatch policy {policy!r}; "
                    f"available: {sorted(DISPATCH_POLICIES)}"
                )
            self.policy_name = policy
            self._dispatch = DISPATCH_POLICIES[policy]
        else:
            self.policy_name = getattr(policy, "__name__", "custom")
            self._dispatch = policy
        self.config = config
        self.devices = [
            SprintDevice(
                config,
                device_id=i,
                sprint_speedup=sprint_speedup,
                sprint_enabled=sprint_enabled,
                refuse_partial_sprints=refuse_partial_sprints,
            )
            for i in range(n_devices)
        ]

    def run(
        self,
        requests: Sequence[Request],
        seed: int | np.random.SeedSequence = 0,
    ) -> FleetResult:
        """Serve ``requests`` (sorted by arrival time) and collect results.

        ``seed`` only feeds policies that randomise (``random``); the
        deterministic policies ignore it, and two runs with identical
        requests and seed produce identical per-request latencies.
        """
        if not requests:
            raise ValueError("at least one request is required")
        ordered = sorted(requests, key=lambda r: (r.arrival_s, r.index))
        for device in self.devices:
            device.reset()
        rng = np.random.default_rng(seed)
        served: list[ServedRequest] = []
        for cursor, request in enumerate(ordered):
            choice = self._dispatch(self.devices, request, rng, cursor)
            served.append(self.devices[choice].serve(request))
        served.sort(key=lambda s: s.request.index)
        stats = tuple(
            DeviceStats(
                device_id=d.device_id,
                requests_served=d.requests_served,
                busy_seconds=d.busy_seconds,
                stored_heat_j=d.pacer.stored_heat_j,
            )
            for d in self.devices
        )
        return FleetResult(
            served=tuple(served), device_stats=stats, policy=self.policy_name
        )
