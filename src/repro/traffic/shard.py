"""Sharded parallel simulation of a hierarchical fleet, one rack per shard.

A topology run (:mod:`repro.traffic.topology`) simulates each rack on its
own :class:`~repro.traffic.engine.ServingEngine`, fanned across the worker
pool of :func:`repro.traffic.sweep.pool_map`.  The coupling between racks —
shared row/datacenter power budgets and the fleet-level rack dispatch — is
resolved *before* any shard runs, from the arrival stream alone:

1. **Rack dispatch** (:func:`plan_shards`): arrivals are split into
   conservative synchronisation windows of ``topology.window_s`` and
   assigned to racks window by window — per-window rack counts by
   largest-remainder apportionment over the dispatch policy's weights,
   interleaved by weighted-fair-queueing virtual times so each window's
   traffic stripes proportionally rather than in runs.  The
   ``least_loaded_rack`` policy weights racks by estimated free capacity
   (offered work drained at the rack's sustained rate, tracked by a fluid
   backlog recursion) with a preference for sprint-capable racks.
2. **Budget slicing** (:func:`repro.traffic.topology.slice_schedules`):
   each parent budget is carved into per-rack, per-window slices in
   proportion to the racks' assigned sprint demand.  Within a window a
   rack's grants contend only against its own slice, so no mid-run
   cross-shard communication is ever needed.

Because every shard job is then fully independent and results merge in
rack order, a sharded run is **bit-identical for any worker count** —
``workers=1`` and ``workers=8`` produce the same
:class:`~repro.traffic.fleet.FleetResult` (the invariance the topology
test suite locks).  Per-shard telemetry merges losslessly: quantile
sketches, timelines (scoped by rack path), and event traces
(:mod:`repro.traffic.telemetry`), and the per-level grant ledgers merge
into a :class:`~repro.traffic.topology.TopologyStats`.

Usage::

    >>> import numpy as np
    >>> from repro.traffic.shard import plan_shards
    >>> from repro.traffic.topology import TopologySpec
    >>> topo = TopologySpec.uniform(1, 2, 4, window_s=10.0,
    ...                             dispatch="rack_round_robin")
    >>> arrival = np.array([0.0, 1.0, 2.0, 3.0])
    >>> plan = plan_shards(topo, arrival, np.ones(4),
    ...                    sprint_capable=np.array([True, True]))
    >>> plan.rack_of.tolist()   # striped evenly across the two racks
    [0, 1, 0, 1]
    >>> plan.demand.tolist()
    [[2.0, 2.0]]
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.core.config import SystemConfig
from repro.core.thermal_backend import ThermalSpec
from repro.traffic.arrivals import seed_stream
from repro.traffic.device import ServedRequest, SprintDevice
from repro.traffic.engine import DISPATCH_POLICIES, ServingEngine
from repro.traffic.governor import GovernorSpec, GovernorStats, SprintGovernor
from repro.traffic.request import Request
from repro.traffic.telemetry import EventTrace, RunTelemetry, TelemetrySpec
from repro.traffic.topology import (
    CascadeGovernor,
    TopologySpec,
    TopologyStats,
    apportion_slots,
    merge_governor_stats,
    slice_schedules,
)

__all__ = ["ShardPlan", "plan_shards", "run_sharded"]

#: Seed-universe domain tag of per-rack dispatch RNG streams (disjoint from
#: the request/dispatch/replication domains 11/13/17/19).
_SHARD_RUN_DOMAIN = 23

#: Dispatch-weight bonus for sprint-capable racks under
#: ``least_loaded_rack`` — all else equal, traffic prefers racks that can
#: still convert it into latency wins.
_SPRINT_PREFERENCE = 1.25

#: Free-capacity floor (as a fraction of a rack's window capacity) so a
#: saturated rack keeps a nonzero weight and apportionment stays defined.
_FLOOR_FRACTION = 0.01


@dataclass(frozen=True)
class ShardPlan:
    """The upfront rack dispatch of one sharded run.

    ``rack_of[i]`` is the rack (tree order) serving arrival ``i``;
    ``demand[w, r]`` is the sprint demand — assigned arrivals at
    sprint-capable racks — that window ``w`` offers rack ``r``, the
    weights :func:`repro.traffic.topology.slice_schedules` divides parent
    budgets by.
    """

    rack_of: np.ndarray
    demand: np.ndarray


def plan_shards(
    topology: TopologySpec,
    arrival_s: np.ndarray,
    sustained_s: np.ndarray,
    sprint_capable: np.ndarray,
) -> ShardPlan:
    """Assign every arrival to a rack, window by window.

    Arrivals must be in time order (request generators emit them so).
    Within each synchronisation window the per-rack counts come from
    largest-remainder apportionment over the dispatch policy's weights and
    the arrivals interleave by WFQ virtual times ``(k + 0.5) / count`` —
    both deterministic, so the plan is a pure function of the stream and
    the spec.
    """
    n = arrival_s.size
    n_racks = topology.n_racks
    rack_devices = np.array(
        [rack.n_devices for _, _, _, rack in topology.iter_racks()], dtype=float
    )
    window_s = topology.window_s
    if n == 0:
        return ShardPlan(
            rack_of=np.zeros(0, dtype=np.int64), demand=np.zeros((1, n_racks))
        )
    windows = np.minimum(
        np.floor(arrival_s / window_s).astype(np.int64), np.iinfo(np.int64).max
    )
    n_windows = int(windows[-1]) + 1
    # Window populations are contiguous runs of the sorted arrival stream.
    starts = np.searchsorted(windows, np.arange(n_windows + 1))
    capacity = rack_devices * window_s
    backlog = np.zeros(n_racks)
    rack_of = np.empty(n, dtype=np.int64)
    demand = np.zeros((n_windows, n_racks))
    static_weights = rack_devices.copy()
    least_loaded = topology.dispatch == "least_loaded_rack"
    for w in range(n_windows):
        lo, hi = int(starts[w]), int(starts[w + 1])
        m = hi - lo
        if m == 0:
            backlog = np.maximum(0.0, backlog - capacity)
            continue
        if least_loaded:
            free = np.maximum(_FLOOR_FRACTION * capacity, capacity - backlog)
            weights = free * np.where(sprint_capable, _SPRINT_PREFERENCE, 1.0)
        else:
            weights = static_weights
        counts = apportion_slots(m, weights)
        racks = np.repeat(np.arange(n_racks), counts)
        offsets = np.arange(m) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        virtual = (offsets + 0.5) / np.repeat(np.maximum(counts, 1), counts)
        order = np.lexsort((racks, virtual))
        assigned = racks[order]
        rack_of[lo:hi] = assigned
        work = np.bincount(assigned, weights=sustained_s[lo:hi], minlength=n_racks)
        backlog = np.maximum(0.0, backlog + work - capacity)
        demand[w] = np.where(sprint_capable, counts, 0)
    return ShardPlan(rack_of=rack_of, demand=demand)


# -- the shard job ---------------------------------------------------------------------


@dataclass(frozen=True)
class _RackJob:
    """One rack's fully self-contained slice of the run (picklable)."""

    config: SystemConfig
    path: str
    first_device_id: int
    n_devices: int
    rack_governor: GovernorSpec
    row_slice: SprintGovernor | None
    dc_slice: SprintGovernor | None
    sprint_enabled: bool
    sprint_speedup: float
    refuse_partial_sprints: bool
    thermal: ThermalSpec
    policy: str
    mode: str
    discipline: str
    queue_bound: int | None
    keep_samples: bool
    telemetry_spec: TelemetrySpec | None
    execution: str
    seed: np.random.SeedSequence
    index: np.ndarray
    arrival_s: np.ndarray
    sustained_s: np.ndarray
    deadline_s: np.ndarray
    kernels: tuple[str, ...] | str
    input_labels: tuple[str, ...] | str


@dataclass(frozen=True)
class _RackOutcome:
    """What one rack shard sends back to the merge."""

    path: str
    served: tuple[ServedRequest, ...]
    rejected: tuple[Request, ...]
    abandoned: tuple[Request, ...]
    served_count: int
    rejected_count: int
    abandoned_count: int
    final_time_s: float
    device_rows: tuple[tuple, ...]
    overall: GovernorStats | None
    level_stats: dict[str, GovernorStats]
    telemetry: RunTelemetry | None
    leaked_grants: int
    fast_path: bool
    fast_path_reason: str | None


def _materialize(job: _RackJob) -> list[Request]:
    kern, lab = job.kernels, job.input_labels
    uniform_kern = isinstance(kern, str)
    uniform_lab = isinstance(lab, str)
    out = []
    for j in range(job.index.size):
        deadline = float(job.deadline_s[j])
        out.append(
            Request(
                index=int(job.index[j]),
                arrival_s=float(job.arrival_s[j]),
                sustained_time_s=float(job.sustained_s[j]),
                kernel=kern if uniform_kern else kern[j],
                input_label=lab if uniform_lab else lab[j],
                deadline_s=deadline if math.isfinite(deadline) else None,
            )
        )
    return out


def _run_rack_job(job: _RackJob) -> _RackOutcome:
    """Simulate one rack to completion (module-level: worker-pool picklable)."""
    devices = [
        SprintDevice(
            job.config,
            device_id=job.first_device_id + i,
            sprint_speedup=job.sprint_speedup,
            sprint_enabled=job.sprint_enabled,
            refuse_partial_sprints=job.refuse_partial_sprints,
            thermal=job.thermal,
            label=f"{job.path}/dev{i}",
        )
        for i in range(job.n_devices)
    ]
    levels: list[tuple[str, SprintGovernor]] = [
        ("rack", job.rack_governor.build(job.config))
    ]
    if job.row_slice is not None:
        levels.append(("row", job.row_slice))
    if job.dc_slice is not None:
        levels.append(("datacenter", job.dc_slice))
    cascade = CascadeGovernor(levels)
    spec = job.telemetry_spec
    stream = probe = trace = None
    if spec is not None:
        stream = spec.build_stream()
        probe = spec.build_probe(excess_power_w=cascade.excess_power_w)
        trace = spec.build_trace()
    engine = ServingEngine(
        devices,
        dispatch=DISPATCH_POLICIES[job.policy],
        policy_name=job.policy,
        mode=job.mode,
        discipline=job.discipline,
        queue_bound=job.queue_bound,
        indexed=job.policy == "least_loaded",
        governor=cascade,
        keep_samples=job.keep_samples,
        telemetry=stream,
        probe=probe,
        trace=trace,
        execution=job.execution,
    )
    rng = np.random.default_rng(job.seed)
    outcome = engine.run(_materialize(job), rng)
    governed = not cascade.is_unlimited
    level_stats = (
        cascade.finalize_levels(outcome.final_time_s) if governed else {}
    )
    telemetry = None
    if stream is not None or probe is not None or trace is not None:
        horizon = [outcome.final_time_s]
        if outcome.served:
            horizon.append(max(s.completed_at_s for s in outcome.served))
        if stream is not None and stream.request_count:
            horizon.append(stream.last_completion_s)
        timeline = None
        if probe is not None:
            timeline = replace(probe.finalize(max(horizon)), scope=job.path)
        telemetry = RunTelemetry(stream=stream, timeline=timeline, trace=trace)
    return _RackOutcome(
        path=job.path,
        served=outcome.served,
        rejected=outcome.rejected,
        abandoned=outcome.abandoned,
        served_count=outcome.served_count,
        rejected_count=outcome.rejected_count,
        abandoned_count=outcome.abandoned_count,
        final_time_s=outcome.final_time_s,
        device_rows=tuple(
            (
                d.device_id,
                d.label,
                d.requests_served,
                d.busy_seconds,
                d.pacer.stored_heat_j,
                d.sprints_served,
                d.sprint_fullness_mean,
                d.thermal_backend.temperature_c,
                d.thermal_backend.melt_fraction,
                d.peak_temperature_c,
                d.peak_melt_fraction,
                d.peak_stored_heat_j,
            )
            for d in devices
        ),
        overall=outcome.governor_stats,
        level_stats=level_stats,
        telemetry=telemetry,
        leaked_grants=cascade.active_grants,
        fast_path=engine.last_run_fast_path,
        fast_path_reason=engine.fast_path_reason,
    )


# -- the sharded run -------------------------------------------------------------------


def _rack_seeds(
    seed: int | np.random.SeedSequence, n_racks: int
) -> list[np.random.SeedSequence]:
    """Deterministic per-rack dispatch-RNG streams (worker-count free)."""
    if isinstance(seed, np.random.SeedSequence):
        return seed.spawn(n_racks)
    return [seed_stream(int(seed), _SHARD_RUN_DOMAIN, r) for r in range(n_racks)]


def run_sharded(
    sim,
    requests: Sequence[Request],
    seed: int | np.random.SeedSequence,
    workers: int = 1,
):
    """Run ``sim``'s topology fleet over ``requests`` across ``workers``.

    ``sim`` is a :class:`~repro.traffic.fleet.FleetSimulator` constructed
    with a non-flat ``topology``.  The run plans rack dispatch and parent
    budget slices upfront (module docstring), fans one job per rack over
    :func:`~repro.traffic.sweep.pool_map`, and merges shard results into a
    single :class:`~repro.traffic.fleet.FleetResult` whose
    ``topology_stats`` carries the per-level grant ledgers.  Results are
    bit-identical for any ``workers`` value.
    """
    from repro.traffic.fleet import FleetResult
    from repro.traffic.sweep import pool_map

    topology: TopologySpec = sim.topology
    ordered = sorted(requests, key=lambda r: (r.arrival_s, r.index))
    n = len(ordered)
    arrival = np.fromiter((r.arrival_s for r in ordered), dtype=float, count=n)
    sustained = np.fromiter(
        (r.sustained_time_s for r in ordered), dtype=float, count=n
    )
    index = np.fromiter((r.index for r in ordered), dtype=np.int64, count=n)
    deadline = np.fromiter(
        (
            math.inf if r.deadline_s is None else r.deadline_s
            for r in ordered
        ),
        dtype=float,
        count=n,
    )
    kernels: tuple[str, ...] | str = tuple(r.kernel for r in ordered)
    if len(set(kernels)) <= 1:
        kernels = kernels[0] if kernels else ""
    labels: tuple[str, ...] | str = tuple(r.input_label for r in ordered)
    if len(set(labels)) <= 1:
        labels = labels[0] if labels else ""

    racks = list(topology.iter_racks())
    sprint_capable = np.array(
        [
            rack.device_knobs(sim.sprint_enabled, sim.sprint_speedup, sim.thermal_spec)[0]
            for _, _, _, rack in racks
        ]
    )
    plan = plan_shards(topology, arrival, sustained, sprint_capable)
    row_slices, dc_slices = slice_schedules(topology, sim.config, plan.demand)
    seeds = _rack_seeds(seed, topology.n_racks)

    jobs = []
    first_id = 0
    for r, (_, _, path, rack) in enumerate(racks):
        enabled, speedup, thermal = rack.device_knobs(
            sim.sprint_enabled, sim.sprint_speedup, sim.thermal_spec
        )
        mask = plan.rack_of == r
        jobs.append(
            _RackJob(
                config=sim.config,
                path=path,
                first_device_id=first_id,
                n_devices=rack.n_devices,
                rack_governor=rack.governor,
                row_slice=row_slices[r],
                dc_slice=dc_slices[r],
                sprint_enabled=enabled,
                sprint_speedup=speedup,
                refuse_partial_sprints=sim.refuse_partial_sprints,
                thermal=thermal,
                policy=sim.policy_name,
                mode=sim.mode,
                discipline=sim.discipline,
                queue_bound=sim.queue_bound,
                keep_samples=sim.keep_samples,
                telemetry_spec=sim.telemetry_spec,
                execution=sim.execution,
                seed=seeds[r],
                index=index[mask],
                arrival_s=arrival[mask],
                sustained_s=sustained[mask],
                deadline_s=deadline[mask],
                kernels=kernels if isinstance(kernels, str) else tuple(
                    k for k, keep in zip(kernels, mask) if keep
                ),
                input_labels=labels if isinstance(labels, str) else tuple(
                    v for v, keep in zip(labels, mask) if keep
                ),
            )
        )
        first_id += rack.n_devices

    outcomes: list[_RackOutcome] = pool_map(_run_rack_job, jobs, workers)
    leaked = sum(o.leaked_grants for o in outcomes)
    if leaked:  # pragma: no cover - protocol violation guard
        raise RuntimeError(f"{leaked} sprint grants leaked across shard barriers")

    from repro.traffic.fleet import DeviceStats

    served = sorted(
        (s for o in outcomes for s in o.served), key=lambda s: s.request.index
    )
    rejected = sorted(
        (x for o in outcomes for x in o.rejected), key=lambda x: x.index
    )
    abandoned = sorted(
        (x for o in outcomes for x in o.abandoned), key=lambda x: x.index
    )
    device_stats = tuple(
        DeviceStats(
            device_id=row[0],
            device_label=row[1],
            requests_served=row[2],
            busy_seconds=row[3],
            stored_heat_j=row[4],
            sprints_served=row[5],
            sprint_fullness_mean=row[6],
            package_temperature_c=row[7],
            melt_fraction=row[8],
            peak_temperature_c=row[9],
            peak_melt_fraction=row[10],
            peak_stored_heat_j=row[11],
        )
        for o in outcomes
        for row in o.device_rows
    )
    topology_stats = _merge_topology_stats(topology, outcomes)
    telemetry = _merge_telemetry(sim.telemetry_spec, outcomes)
    return FleetResult(
        served=tuple(served),
        device_stats=device_stats,
        policy=f"{topology.dispatch}+{sim.policy_name}",
        rejected=tuple(rejected),
        abandoned=tuple(abandoned),
        governor_stats=None if topology_stats is None else topology_stats.overall,
        final_event_s=max((o.final_time_s for o in outcomes), default=0.0),
        telemetry=telemetry,
        served_count=sum(o.served_count for o in outcomes),
        rejected_count=sum(o.rejected_count for o in outcomes),
        abandoned_count=sum(o.abandoned_count for o in outcomes),
        topology_stats=topology_stats,
        fast_path=all(o.fast_path for o in outcomes) if outcomes else False,
        fast_path_reason=next(
            (o.fast_path_reason for o in outcomes if o.fast_path_reason is not None),
            None,
        ),
    )


def _merge_topology_stats(
    topology: TopologySpec, outcomes: Sequence[_RackOutcome]
) -> TopologyStats | None:
    """Fold per-shard ledgers into the per-level TopologyStats view."""
    governed = [o for o in outcomes if o.overall is not None]
    if not governed:
        return None
    overall = merge_governor_stats(
        [o.overall for o in governed], policy="cascade"
    )
    rack_stats = tuple(o.level_stats.get("rack") for o in outcomes)
    row_of = topology.row_of_rack()
    rows = []
    for r, row in enumerate(topology.rows):
        if row.governor.policy == "unlimited":
            rows.append(None)
            continue
        member_stats = [
            outcomes[j].level_stats["row"]
            for j in range(len(outcomes))
            if row_of[j] == r and "row" in outcomes[j].level_stats
        ]
        rows.append(
            merge_governor_stats(member_stats, policy=row.governor.policy)
            if member_stats
            else None
        )
    datacenter = None
    if topology.governor.policy != "unlimited":
        member_stats = [
            o.level_stats["datacenter"]
            for o in outcomes
            if "datacenter" in o.level_stats
        ]
        if member_stats:
            datacenter = merge_governor_stats(
                member_stats, policy=topology.governor.policy
            )
    return TopologyStats(
        overall=overall,
        racks=rack_stats,
        rows=tuple(rows),
        datacenter=datacenter,
        rack_paths=topology.rack_paths,
    )


def _merge_telemetry(
    spec: TelemetrySpec | None, outcomes: Sequence[_RackOutcome]
) -> RunTelemetry | None:
    """Pool per-shard telemetry: sketches merge, timelines align, traces
    interleave in time order."""
    bundles = [o.telemetry for o in outcomes if o.telemetry is not None]
    if not bundles:
        return None
    stream = None
    streams = [b.stream for b in bundles if b.stream is not None]
    if streams:
        stream = streams[0]
        for other in streams[1:]:
            stream.merge(other)
    timeline = None
    timelines = [b.timeline for b in bundles if b.timeline is not None]
    if timelines:
        timeline = timelines[0]
        for other in timelines[1:]:
            timeline = timeline.merge(other)
    trace = None
    traces = [b.trace for b in bundles if b.trace is not None]
    if traces:
        capacity = spec.trace_capacity or None if spec is not None else None
        trace = EventTrace(capacity=capacity)
        merged = sorted(
            (rec for t in traces for rec in t.records), key=lambda rec: rec.time_s
        )
        for rec in merged:
            trace.add(
                rec.time_s,
                rec.kind,
                request_index=rec.request_index,
                device_id=rec.device_id,
                detail=rec.detail,
                label=rec.label,
            )
        trace.dropped += sum(t.dropped for t in traces)
    return RunTelemetry(stream=stream, timeline=timeline, trace=trace)
