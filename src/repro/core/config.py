"""System configuration: the complete description of a sprint-enabled platform.

:class:`SystemConfig` ties together every substrate the simulation needs —
the many-core machine, the PCM-augmented thermal package, the per-core power
model, the power-delivery network and activation schedule, the off-chip
power source, and the sprint policy.  :meth:`SystemConfig.paper_default`
reproduces the design point evaluated in the paper: a 16-core chip whose
package sustains ~1 W but can sprint at ~16 W for about a second thanks to
150 mg of phase change material.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.arch.machine import MachineConfig, PAPER_MACHINE
from repro.core.policy import PAPER_POLICY, SprintPolicy
from repro.energy.core import CorePowerModel
from repro.power.activation import ActivationSchedule, PAPER_SLOW_RAMP
from repro.power.pdn import PdnConfig
from repro.power.sources import PHONE_HYBRID, PowerSource
from repro.thermal.package import FULL_PCM_PACKAGE, PcmPackage, SMALL_PCM_PACKAGE


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to simulate sprinting on one platform."""

    machine: MachineConfig = PAPER_MACHINE
    package: PcmPackage = FULL_PCM_PACKAGE
    core_power: CorePowerModel = field(default_factory=CorePowerModel)
    policy: SprintPolicy = PAPER_POLICY
    activation: ActivationSchedule = PAPER_SLOW_RAMP
    pdn: PdnConfig = field(default_factory=PdnConfig)
    power_source: PowerSource = PHONE_HYBRID
    #: Simulation quantum; the paper samples energy every 1000 cycles (1 µs at
    #: 1 GHz) but a 1 ms quantum resolves the thermal transients of interest.
    quantum_s: float = 1e-3

    def __post_init__(self) -> None:
        if self.quantum_s <= 0:
            raise ValueError("quantum must be positive")
        if self.policy.sprint_cores > self.machine.n_cores:
            raise ValueError(
                "policy sprints with more cores than the machine has "
                f"({self.policy.sprint_cores} > {self.machine.n_cores})"
            )

    # -- derived quantities -------------------------------------------------------

    @property
    def sprint_power_w(self) -> float:
        """Chip power during a full parallel sprint."""
        return self.policy.sprint_power_w(self.core_power.active_power_w)

    @property
    def sustainable_power_w(self) -> float:
        """Thermal design power of the package."""
        return self.package.sustainable_power_w

    @property
    def power_headroom(self) -> float:
        """Sprint power relative to the sustainable power."""
        return self.sprint_power_w / self.sustainable_power_w

    def activation_delay_s(self) -> float:
        """Time before sprint cores may compute (the 128 µs ramp of Section 5.3)."""
        return self.activation.duration_s(self.policy.sprint_cores)

    def power_source_feasible(self, sprint_duration_s: float | None = None) -> bool:
        """Whether the configured power source can deliver the sprint current."""
        duration = (
            self.policy.max_sprint_duration_s
            if sprint_duration_s is None
            else sprint_duration_s
        )
        return self.power_source.can_supply(self.sprint_power_w, duration)

    # -- canonical configurations -----------------------------------------------------

    @classmethod
    def paper_default(cls) -> "SystemConfig":
        """The paper's fully provisioned design: 16 cores, 150 mg of PCM."""
        return cls()

    @classmethod
    def small_pcm(cls) -> "SystemConfig":
        """The constrained design of Section 8.3: 100x less PCM (1.5 mg)."""
        return cls(package=SMALL_PCM_PACKAGE)

    # -- variants ------------------------------------------------------------------------

    def with_package(self, package: PcmPackage) -> "SystemConfig":
        """Copy with a different thermal package."""
        return replace(self, package=package)

    def with_policy(self, policy: SprintPolicy) -> "SystemConfig":
        """Copy with a different sprint policy."""
        return replace(self, policy=policy)

    def with_sprint_cores(self, cores: int) -> "SystemConfig":
        """Copy sprinting with a different core count (Figure 10)."""
        machine = self.machine
        if cores > machine.n_cores:
            machine = machine.with_cores(cores)
        return replace(
            self, machine=machine, policy=self.policy.with_sprint_cores(cores)
        )

    def with_memory_bandwidth_scale(self, factor: float) -> "SystemConfig":
        """Copy with scaled memory bandwidth (Section 8.5)."""
        return replace(self, machine=self.machine.with_memory_bandwidth_scale(factor))

    def with_quantum(self, quantum_s: float) -> "SystemConfig":
        """Copy with a different simulation quantum."""
        return replace(self, quantum_s=quantum_s)
