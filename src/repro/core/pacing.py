"""Sprint pacing: how often can the system sprint for bursty task streams?

The paper emphasises that sprinting improves responsiveness, not sustained
throughput: "once sprinting capacity is exhausted, the chip must cool in
non-sprint mode before it can sprint again", and approximates the cooldown
as the sprint duration multiplied by the ratio of sprint power to TDP.  The
user-facing question it leaves open (Section 1's "how much do end users
tolerate the delay between sprints") needs a model of repeated sprints under
a stream of bursty tasks — which is what this module provides.

The package is treated as a heat reservoir filled by each sprint's
dissipated energy above the sustainable budget and drained between tasks.
*How* that reservoir drains — and what temperature/enthalpy telemetry it
reports — is a pluggable fidelity choice, selected per
:class:`SprintPacer` by a :class:`~repro.core.thermal_backend.ThermalSpec`:

* ``linear`` (default) drains at the constant sustainable power.  That is
  exactly the arithmetic behind the paper's cooldown rule of thumb, so
  steady-state conclusions (the minimum inter-arrival time that keeps every
  task sprintable, the fraction of tasks that can sprint at a given arrival
  rate) match the detailed simulation while costing microseconds.
* ``rc`` drains with the package's exponential Newtonian cooling, which
  slows as the package approaches ambient.
* ``pcm`` re-runs the enthalpy formulation of :mod:`repro.thermal.pcm` per
  task, reproducing the Figure 4 melt plateau under serving load.

Whether the pacer re-runs the RC network or the PCM enthalpy physics per
task is therefore a configuration choice, not a limitation of the model;
``examples/thermal_fidelity_study.py`` quantifies where the coarse default
mispredicts tail latency against the physics-backed backends.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import SystemConfig
from repro.core.thermal_backend import ThermalBackend, ThermalSpec


@dataclass(frozen=True)
class TaskOutcome:
    """What happened to one task in a bursty sequence.

    ``response_time_s`` is the task's execution (service) time — between the
    sprinted and sustained extremes; ``queueing_delay_s`` is any additional
    wait behind a still-running earlier task.
    """

    index: int
    arrival_s: float
    sprinted: bool
    response_time_s: float
    stored_heat_before_j: float
    stored_heat_after_j: float
    queueing_delay_s: float = 0.0
    #: Fraction of the task's work covered by the sprint budget: 1.0 for a
    #: full sprint, 0.0 for sustained execution, in between for partial
    #: sprints (``sprinted`` alone cannot tell a barely-partial sprint
    #: from a full one).
    sprint_fullness: float = 0.0
    #: Package temperature reported by the thermal backend after the task
    #: (the linear backend maps fill linearly onto the ambient-to-limit
    #: range; physics backends report their actual temperature state).
    package_temperature_c: float = 0.0
    #: Liquid fraction of the PCM after the task (0 for backends without
    #: phase-change state).
    melt_fraction: float = 0.0

    @property
    def completed_at_s(self) -> float:
        """Absolute completion time of the task."""
        return self.arrival_s + self.queueing_delay_s + self.response_time_s


@dataclass(frozen=True)
class PacingSummary:
    """Aggregate view of a task sequence.

    The percentile fields use the same linear interpolation as the fleet
    serving metrics (:func:`repro.traffic.metrics.latency_percentiles`), so
    single-device pacing studies and fleet runs read on one scale.
    """

    outcomes: tuple[TaskOutcome, ...]
    sprint_fraction: float
    average_response_s: float
    worst_response_s: float
    p95_response_s: float = 0.0
    p99_response_s: float = 0.0

    @property
    def task_count(self) -> int:
        """Number of tasks simulated."""
        return len(self.outcomes)


@dataclass
class SprintPacer:
    """Tracks sprint capacity across a sequence of bursty tasks.

    Parameters
    ----------
    config:
        The platform whose package and policy define the heat reservoir.
    sprint_speedup:
        Responsiveness gain of a (full) sprint over sustained execution for
        the task mix being modelled — e.g. the Figure 7 average of ~10x, or a
        measured :meth:`SprintResult.speedup_over` value.
    refuse_partial_sprints:
        When True, a task only sprints if the whole sprint's heat fits in the
        remaining reservoir; otherwise it runs sustained.  When False, the
        task sprints for whatever budget remains and finishes sustained
        (mirroring the runtime's migrate-on-exhaustion behaviour), with the
        response time interpolated between the two extremes.
    thermal:
        Reservoir fidelity: a backend name from
        :data:`~repro.core.thermal_backend.THERMAL_BACKENDS`, a
        :class:`~repro.core.thermal_backend.ThermalSpec`, or a prebuilt
        :class:`~repro.core.thermal_backend.ThermalBackend` instance (which
        the pacer then owns — do not share one across pacers).
    """

    config: SystemConfig
    sprint_speedup: float = 10.0
    refuse_partial_sprints: bool = False
    thermal: str | ThermalSpec | ThermalBackend = "linear"
    _backend: ThermalBackend = field(init=False, repr=False)
    _clock_s: float = field(default=0.0, init=False)
    _last_arrival_s: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.sprint_speedup < 1.0:
            raise ValueError("sprint speedup must be at least 1x")
        if isinstance(self.thermal, str):
            self.thermal = ThermalSpec(backend=self.thermal)
        if isinstance(self.thermal, ThermalSpec):
            self._backend = self.thermal.build(self.config)
        elif isinstance(self.thermal, ThermalBackend):
            self._backend = self.thermal
        else:
            raise TypeError(
                "thermal must be a backend name, a ThermalSpec, or a "
                f"ThermalBackend, not {type(self.thermal).__name__}"
            )

    # -- reservoir arithmetic --------------------------------------------------------

    @property
    def backend(self) -> ThermalBackend:
        """The thermal backend owning this pacer's reservoir state."""
        return self._backend

    @property
    def capacity_j(self) -> float:
        """Heat the package can absorb above sustained operation."""
        return self._backend.capacity_j

    @property
    def drain_power_w(self) -> float:
        """Nominal rate at which stored heat leaves the package between tasks.

        This is the sustainable power — the exact drain rate of the
        ``linear`` backend and the full-reservoir rate the physics backends
        decay from.  Deposit arithmetic (:meth:`sprint_heat_for`) and the
        cooldown rule of thumb (:meth:`minimum_interarrival_s`) are defined
        against it for every backend.
        """
        return self.config.sustainable_power_w

    @property
    def stored_heat_j(self) -> float:
        """Heat currently stored in the package (0 = fully cooled)."""
        return self._backend.stored_heat_j

    @property
    def busy_until_s(self) -> float:
        """Time at which the last accepted task finishes (0 if idle so far).

        A task arriving before this time queues behind the running one; a
        fleet dispatcher uses it to find the least-loaded device.
        """
        return self._clock_s

    @property
    def available_fraction(self) -> float:
        """Fraction of the sprint budget currently available."""
        if self.capacity_j == 0:
            return 0.0
        return 1.0 - self.stored_heat_j / self.capacity_j

    def stored_heat_at(self, time_s: float) -> float:
        """Projected stored heat at a future instant, without mutating state.

        Heat only drains while the device is idle, so the projection holds
        the reservoir constant until :attr:`busy_until_s` and lets the
        backend cool it afterwards.  Dispatchers use this to rank devices
        by the sprint budget a request would actually find.
        """
        idle = max(0.0, time_s - self._clock_s)
        return self._backend.projected_stored_heat_j(idle)

    def available_fraction_at(self, time_s: float) -> float:
        """Projected :attr:`available_fraction` at a future instant."""
        if self.capacity_j == 0:
            return 0.0
        return 1.0 - self.stored_heat_at(time_s) / self.capacity_j

    def sprint_heat_for(self, sustained_time_s: float) -> float:
        """Heat a full sprint of one task deposits above the sustainable budget.

        A task that takes ``sustained_time_s`` on one core takes
        ``sustained_time_s / speedup`` when sprinting at ``sprint_power_w``;
        only the excess over what the package can dissipate counts against
        the reservoir.
        """
        if sustained_time_s < 0:
            raise ValueError("task time must be non-negative")
        sprint_time = sustained_time_s / self.sprint_speedup
        excess_power = self.config.sprint_power_w - self.drain_power_w
        return max(0.0, excess_power * sprint_time)

    def minimum_interarrival_s(self, sustained_time_s: float) -> float:
        """Smallest task spacing that lets every task sprint fully.

        This is the paper's cooldown rule of thumb: the sprint's excess heat
        must drain at the sustainable power before the next task arrives.
        It is exact for the ``linear`` backend only.  ``rc`` cools slower
        (the exponential rate decays from the sustainable power), so it
        needs more spacing than this; the ``pcm`` plateau drains slightly
        *faster* than the sustainable power while melting but far slower
        once solid — ``examples/thermal_fidelity_study.py`` quantifies
        both gaps.
        """
        return self.sprint_heat_for(sustained_time_s) / self.drain_power_w

    # -- simulation --------------------------------------------------------------------

    def reset(self) -> None:
        """Forget all stored heat (package back at ambient)."""
        self._backend.reset()
        self._clock_s = 0.0
        self._last_arrival_s = 0.0

    def advance_to(self, clock_s: float, last_arrival_s: float) -> None:
        """Move the pacer's clock forward after externally-applied work.

        The engine's batched fast path executes a run of requests in numpy
        and lands the device exactly where the scalar path would have:
        ``clock_s`` is the completion instant of the last executed task and
        ``last_arrival_s`` the latest arrival handed to this device (the
        in-order guard watermark).  Rewinding is refused — batch execution
        only ever moves time forward.
        """
        if clock_s < self._clock_s:
            raise ValueError("batch execution cannot rewind the pacer clock")
        self._clock_s = clock_s
        self._last_arrival_s = max(self._last_arrival_s, last_arrival_s)

    def task_arrival(
        self,
        arrival_s: float,
        sustained_time_s: float,
        index: int = 0,
        allow_sprint: bool = True,
    ) -> TaskOutcome:
        """Process one task arriving at ``arrival_s``.

        Tasks must arrive in non-decreasing time order.  A task arriving
        while the previous one is still running queues behind it; the wait
        is reported separately in ``queueing_delay_s`` (``response_time_s``
        is execution only, so user-visible latency is their sum).  With
        ``allow_sprint=False`` the task runs sustained regardless of the
        budget (the no-sprint baseline of a fleet comparison), while the
        clock and reservoir drain still advance.
        """
        if arrival_s < self._last_arrival_s:
            raise ValueError("tasks must arrive in time order")
        if sustained_time_s <= 0:
            raise ValueError("task time must be positive")
        self._last_arrival_s = arrival_s
        # The task starts once the previous one has finished.
        start_s = max(arrival_s, self._clock_s)
        return self.execute_at(
            start_s,
            sustained_time_s,
            index=index,
            allow_sprint=allow_sprint,
            arrival_s=arrival_s,
        )

    def execute_at(
        self,
        start_s: float,
        sustained_time_s: float,
        index: int = 0,
        allow_sprint: bool = True,
        arrival_s: float | None = None,
    ) -> TaskOutcome:
        """Run one task starting exactly at ``start_s``; the caller owns queueing.

        This is the primitive under :meth:`task_arrival`: it does not decide
        *when* the task runs, only what happens when it does.  A central-queue
        serving engine holds requests in its own queue and calls this at
        assignment time, so the pacer never re-derives a wait the engine has
        already resolved.  ``start_s`` must not precede the end of the
        previously executed task (the device is still busy then).  ``arrival_s``
        is carried into the outcome for bookkeeping (default: ``start_s``,
        i.e. no reported queueing delay); stored heat drains during any idle
        gap between the previous task's end and ``start_s``.
        """
        if sustained_time_s <= 0:
            raise ValueError("task time must be positive")
        if start_s < self._clock_s:
            raise ValueError("task cannot start while the previous one is running")
        if arrival_s is None:
            arrival_s = start_s
        # Keep task_arrival's in-order guard meaningful when the two entry
        # points are mixed (a no-op on the task_arrival path, which has
        # already advanced the watermark to this arrival).
        self._last_arrival_s = max(self._last_arrival_s, arrival_s)

        # Stored heat drains during any idle gap before the start.
        backend = self._backend
        backend.drain(start_s - self._clock_s)
        before = backend.stored_heat_j
        queueing_delay = start_s - arrival_s

        demand = self.sprint_heat_for(sustained_time_s)
        headroom = backend.headroom_j
        sprint_time = sustained_time_s / self.sprint_speedup

        if not allow_sprint:
            sprinted = False
            fullness = 0.0
            response = sustained_time_s
        elif demand <= headroom:
            sprinted = True
            fullness = 1.0
            response = sprint_time
            backend.deposit(demand)
        elif self.refuse_partial_sprints or headroom <= 0.0:
            sprinted = False
            fullness = 0.0
            response = sustained_time_s
        else:
            # Partial sprint (migrate on exhaustion): the fraction of the work
            # covered by the remaining budget runs at sprint speed, the rest
            # at sustained speed.
            sprinted = True
            fullness = headroom / demand
            response = fullness * sprint_time + (1.0 - fullness) * sustained_time_s
            backend.deposit(headroom)

        self._clock_s = start_s + response
        return TaskOutcome(
            index=index,
            arrival_s=arrival_s,
            sprinted=sprinted,
            response_time_s=response,
            stored_heat_before_j=before,
            stored_heat_after_j=backend.stored_heat_j,
            queueing_delay_s=queueing_delay,
            sprint_fullness=fullness,
            package_temperature_c=backend.temperature_c,
            melt_fraction=backend.melt_fraction,
        )

    def simulate_periodic(
        self,
        interarrival_s: float,
        sustained_time_s: float,
        tasks: int,
        allow_sprint: bool = True,
    ) -> PacingSummary:
        """Run a periodic task stream and summarise responsiveness.

        ``allow_sprint=False`` runs the whole stream sustained — the
        no-sprint baseline of a responsiveness comparison — while the clock
        and reservoir drain still advance.
        """
        if interarrival_s <= 0:
            raise ValueError("inter-arrival time must be positive")
        if tasks < 1:
            raise ValueError("at least one task is required")
        self.reset()
        outcomes = [
            self.task_arrival(
                i * interarrival_s, sustained_time_s, index=i, allow_sprint=allow_sprint
            )
            for i in range(tasks)
        ]
        responses = [o.response_time_s for o in outcomes]
        p95, p99 = (float(p) for p in np.percentile(responses, (95.0, 99.0)))
        return PacingSummary(
            outcomes=tuple(outcomes),
            sprint_fraction=sum(o.sprinted for o in outcomes) / tasks,
            average_response_s=sum(responses) / tasks,
            worst_response_s=max(responses),
            p95_response_s=p95,
            p99_response_s=p99,
        )
