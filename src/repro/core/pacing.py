"""Sprint pacing: how often can the system sprint for bursty task streams?

The paper emphasises that sprinting improves responsiveness, not sustained
throughput: "once sprinting capacity is exhausted, the chip must cool in
non-sprint mode before it can sprint again", and approximates the cooldown
as the sprint duration multiplied by the ratio of sprint power to TDP.  The
user-facing question it leaves open (Section 1's "how much do end users
tolerate the delay between sprints") needs a model of repeated sprints under
a stream of bursty tasks — which is what this module provides.

The model is deliberately coarse-grained (it does not re-run the RC network
per task): the package is treated as a heat reservoir of capacity equal to
the sprint budget, filled by each sprint's dissipated energy above the
sustainable budget and drained between tasks at the package's sustainable
power.  That is exactly the arithmetic behind the paper's cooldown rule of
thumb, so steady-state conclusions (the minimum inter-arrival time that
keeps every task sprintable, the fraction of tasks that can sprint at a
given arrival rate) match the detailed simulation while costing microseconds
to evaluate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import SystemConfig


@dataclass(frozen=True)
class TaskOutcome:
    """What happened to one task in a bursty sequence.

    ``response_time_s`` is the task's execution (service) time — between the
    sprinted and sustained extremes; ``queueing_delay_s`` is any additional
    wait behind a still-running earlier task.
    """

    index: int
    arrival_s: float
    sprinted: bool
    response_time_s: float
    stored_heat_before_j: float
    stored_heat_after_j: float
    queueing_delay_s: float = 0.0
    #: Fraction of the task's work covered by the sprint budget: 1.0 for a
    #: full sprint, 0.0 for sustained execution, in between for partial
    #: sprints (``sprinted`` alone cannot tell a barely-partial sprint
    #: from a full one).
    sprint_fullness: float = 0.0

    @property
    def completed_at_s(self) -> float:
        """Absolute completion time of the task."""
        return self.arrival_s + self.queueing_delay_s + self.response_time_s


@dataclass(frozen=True)
class PacingSummary:
    """Aggregate view of a task sequence."""

    outcomes: tuple[TaskOutcome, ...]
    sprint_fraction: float
    average_response_s: float
    worst_response_s: float

    @property
    def task_count(self) -> int:
        """Number of tasks simulated."""
        return len(self.outcomes)


@dataclass
class SprintPacer:
    """Tracks sprint capacity across a sequence of bursty tasks.

    Parameters
    ----------
    config:
        The platform whose package and policy define the heat reservoir.
    sprint_speedup:
        Responsiveness gain of a (full) sprint over sustained execution for
        the task mix being modelled — e.g. the Figure 7 average of ~10x, or a
        measured :meth:`SprintResult.speedup_over` value.
    refuse_partial_sprints:
        When True, a task only sprints if the whole sprint's heat fits in the
        remaining reservoir; otherwise it runs sustained.  When False, the
        task sprints for whatever budget remains and finishes sustained
        (mirroring the runtime's migrate-on-exhaustion behaviour), with the
        response time interpolated between the two extremes.
    """

    config: SystemConfig
    sprint_speedup: float = 10.0
    refuse_partial_sprints: bool = False
    _stored_heat_j: float = field(default=0.0, init=False)
    _clock_s: float = field(default=0.0, init=False)
    _last_arrival_s: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        if self.sprint_speedup < 1.0:
            raise ValueError("sprint speedup must be at least 1x")

    # -- reservoir arithmetic --------------------------------------------------------

    @property
    def capacity_j(self) -> float:
        """Heat the package can absorb above sustained operation."""
        return self.config.package.sprint_budget_j(self.config.sprint_power_w)

    @property
    def drain_power_w(self) -> float:
        """Rate at which stored heat leaves the package between tasks."""
        return self.config.sustainable_power_w

    @property
    def stored_heat_j(self) -> float:
        """Heat currently stored in the package (0 = fully cooled)."""
        return self._stored_heat_j

    @property
    def busy_until_s(self) -> float:
        """Time at which the last accepted task finishes (0 if idle so far).

        A task arriving before this time queues behind the running one; a
        fleet dispatcher uses it to find the least-loaded device.
        """
        return self._clock_s

    @property
    def available_fraction(self) -> float:
        """Fraction of the sprint budget currently available."""
        if self.capacity_j == 0:
            return 0.0
        return 1.0 - self._stored_heat_j / self.capacity_j

    def stored_heat_at(self, time_s: float) -> float:
        """Projected stored heat at a future instant, without mutating state.

        Heat only drains while the device is idle, so the projection holds
        the reservoir constant until :attr:`busy_until_s` and drains it at
        the sustainable power afterwards.  Dispatchers use this to rank
        devices by the sprint budget a request would actually find.
        """
        idle = max(0.0, time_s - self._clock_s)
        return max(0.0, self._stored_heat_j - self.drain_power_w * idle)

    def available_fraction_at(self, time_s: float) -> float:
        """Projected :attr:`available_fraction` at a future instant."""
        if self.capacity_j == 0:
            return 0.0
        return 1.0 - self.stored_heat_at(time_s) / self.capacity_j

    def sprint_heat_for(self, sustained_time_s: float) -> float:
        """Heat a full sprint of one task deposits above the sustainable budget.

        A task that takes ``sustained_time_s`` on one core takes
        ``sustained_time_s / speedup`` when sprinting at ``sprint_power_w``;
        only the excess over what the package can dissipate counts against
        the reservoir.
        """
        if sustained_time_s < 0:
            raise ValueError("task time must be non-negative")
        sprint_time = sustained_time_s / self.sprint_speedup
        excess_power = self.config.sprint_power_w - self.drain_power_w
        return max(0.0, excess_power * sprint_time)

    def minimum_interarrival_s(self, sustained_time_s: float) -> float:
        """Smallest task spacing that lets every task sprint fully.

        This is the paper's cooldown rule of thumb: the sprint's excess heat
        must drain at the sustainable power before the next task arrives.
        """
        return self.sprint_heat_for(sustained_time_s) / self.drain_power_w

    # -- simulation --------------------------------------------------------------------

    def reset(self) -> None:
        """Forget all stored heat (package back at ambient)."""
        self._stored_heat_j = 0.0
        self._clock_s = 0.0
        self._last_arrival_s = 0.0

    def task_arrival(
        self,
        arrival_s: float,
        sustained_time_s: float,
        index: int = 0,
        allow_sprint: bool = True,
    ) -> TaskOutcome:
        """Process one task arriving at ``arrival_s``.

        Tasks must arrive in non-decreasing time order.  A task arriving
        while the previous one is still running queues behind it; the wait
        is reported separately in ``queueing_delay_s`` (``response_time_s``
        is execution only, so user-visible latency is their sum).  With
        ``allow_sprint=False`` the task runs sustained regardless of the
        budget (the no-sprint baseline of a fleet comparison), while the
        clock and reservoir drain still advance.
        """
        if arrival_s < self._last_arrival_s:
            raise ValueError("tasks must arrive in time order")
        if sustained_time_s <= 0:
            raise ValueError("task time must be positive")
        self._last_arrival_s = arrival_s
        # The task starts once the previous one has finished.
        start_s = max(arrival_s, self._clock_s)
        return self.execute_at(
            start_s,
            sustained_time_s,
            index=index,
            allow_sprint=allow_sprint,
            arrival_s=arrival_s,
        )

    def execute_at(
        self,
        start_s: float,
        sustained_time_s: float,
        index: int = 0,
        allow_sprint: bool = True,
        arrival_s: float | None = None,
    ) -> TaskOutcome:
        """Run one task starting exactly at ``start_s``; the caller owns queueing.

        This is the primitive under :meth:`task_arrival`: it does not decide
        *when* the task runs, only what happens when it does.  A central-queue
        serving engine holds requests in its own queue and calls this at
        assignment time, so the pacer never re-derives a wait the engine has
        already resolved.  ``start_s`` must not precede the end of the
        previously executed task (the device is still busy then).  ``arrival_s``
        is carried into the outcome for bookkeeping (default: ``start_s``,
        i.e. no reported queueing delay); stored heat drains during any idle
        gap between the previous task's end and ``start_s``.
        """
        if sustained_time_s <= 0:
            raise ValueError("task time must be positive")
        if start_s < self._clock_s:
            raise ValueError("task cannot start while the previous one is running")
        if arrival_s is None:
            arrival_s = start_s
        # Keep task_arrival's in-order guard meaningful when the two entry
        # points are mixed (a no-op on the task_arrival path, which has
        # already advanced the watermark to this arrival).
        self._last_arrival_s = max(self._last_arrival_s, arrival_s)

        # Stored heat drains during any idle gap before the start.
        idle = start_s - self._clock_s
        self._stored_heat_j = max(0.0, self._stored_heat_j - self.drain_power_w * idle)
        before = self._stored_heat_j
        queueing_delay = start_s - arrival_s

        demand = self.sprint_heat_for(sustained_time_s)
        headroom = max(0.0, self.capacity_j - self._stored_heat_j)
        sprint_time = sustained_time_s / self.sprint_speedup

        if not allow_sprint:
            sprinted = False
            fullness = 0.0
            response = sustained_time_s
        elif demand <= headroom:
            sprinted = True
            fullness = 1.0
            response = sprint_time
            self._stored_heat_j += demand
        elif self.refuse_partial_sprints or headroom <= 0.0:
            sprinted = False
            fullness = 0.0
            response = sustained_time_s
        else:
            # Partial sprint (migrate on exhaustion): the fraction of the work
            # covered by the remaining budget runs at sprint speed, the rest
            # at sustained speed.
            sprinted = True
            fullness = headroom / demand
            response = fullness * sprint_time + (1.0 - fullness) * sustained_time_s
            self._stored_heat_j += headroom

        self._clock_s = start_s + response
        return TaskOutcome(
            index=index,
            arrival_s=arrival_s,
            sprinted=sprinted,
            response_time_s=response,
            stored_heat_before_j=before,
            stored_heat_after_j=self._stored_heat_j,
            queueing_delay_s=queueing_delay,
            sprint_fullness=fullness,
        )

    def simulate_periodic(
        self, interarrival_s: float, sustained_time_s: float, tasks: int
    ) -> PacingSummary:
        """Run a periodic task stream and summarise responsiveness."""
        if interarrival_s <= 0:
            raise ValueError("inter-arrival time must be positive")
        if tasks < 1:
            raise ValueError("at least one task is required")
        self.reset()
        outcomes = [
            self.task_arrival(i * interarrival_s, sustained_time_s, index=i)
            for i in range(tasks)
        ]
        responses = [o.response_time_s for o in outcomes]
        return PacingSummary(
            outcomes=tuple(outcomes),
            sprint_fraction=sum(o.sprinted for o in outcomes) / tasks,
            average_response_s=sum(responses) / tasks,
            worst_response_s=max(responses),
        )
