"""Sprint runtime: the paper's primary contribution.

This package implements Sections 3 and 7 of the paper on top of the
thermal, electrical, energy and architectural substrates:

* :mod:`repro.core.config` — :class:`SystemConfig`, the complete description
  of a sprint-enabled platform (machine + package + power + policy),
* :mod:`repro.core.budget` — thermal-budget estimators (energy-based, as the
  paper proposes, and a temperature oracle for ablation),
* :mod:`repro.core.policy` — when to sprint, with how many cores, and what
  to do when the budget runs out (migrate threads or throttle frequency),
* :mod:`repro.core.thermal_backend` — pluggable reservoir physics for
  pacing (linear rule-of-thumb, RC cooling, PCM enthalpy) behind one
  :class:`ThermalBackend` interface, selected by a sweep-friendly
  :class:`ThermalSpec`,
* :mod:`repro.core.controller` — the sprint state machine itself,
* :mod:`repro.core.simulation` — :class:`SprintSimulation`, which couples the
  execution engine with the thermal network and the controller to produce
  the end-to-end results of Section 8,
* :mod:`repro.core.metrics` — result containers and derived metrics.
"""

from repro.core.budget import (
    EnergyBudgetEstimator,
    OracleBudgetEstimator,
    ThermalBudgetEstimator,
)
from repro.core.config import SystemConfig
from repro.core.controller import ModeTransition, SprintController, SprintDecision
from repro.core.metrics import ModeInterval, SprintMetrics, SprintResult
from repro.core.modes import ExecutionMode, SprintMode, TerminationAction
from repro.core.pacing import PacingSummary, SprintPacer, TaskOutcome
from repro.core.policy import SprintPolicy
from repro.core.simulation import SprintSimulation
from repro.core.thermal_backend import (
    THERMAL_BACKENDS,
    LinearReservoir,
    PcmReservoir,
    RCCooling,
    ThermalBackend,
    ThermalSpec,
)

__all__ = [
    "EnergyBudgetEstimator",
    "ExecutionMode",
    "LinearReservoir",
    "ModeInterval",
    "ModeTransition",
    "OracleBudgetEstimator",
    "PacingSummary",
    "PcmReservoir",
    "RCCooling",
    "SprintController",
    "SprintDecision",
    "SprintMetrics",
    "SprintMode",
    "SprintPacer",
    "SprintPolicy",
    "SprintResult",
    "SprintSimulation",
    "SystemConfig",
    "THERMAL_BACKENDS",
    "TaskOutcome",
    "TerminationAction",
    "ThermalBackend",
    "ThermalBudgetEstimator",
    "ThermalSpec",
]
