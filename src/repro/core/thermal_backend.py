"""Pluggable thermal backends: the reservoir physics under sprint pacing.

:class:`~repro.core.pacing.SprintPacer` models repeated sprints against a
heat reservoir.  *How* that reservoir fills and drains is a fidelity choice,
not a fixed fact, so this module makes it a subsystem boundary: a
:class:`ThermalBackend` owns the stored-heat state of one device's package
(capacity, projected headroom at a future instant, deposits, drains over
idle intervals, and temperature/enthalpy telemetry), and a frozen
:class:`ThermalSpec` names a backend plus its knobs so fleet sweeps can put
pacing fidelity on a grid axis, exactly like dispatch policy and governor.

Three backends ship:

* ``linear`` — :class:`LinearReservoir`, the paper's cooldown rule of
  thumb: a reservoir of the sprint budget drained at the sustainable power.
  This is bit-identical to the arithmetic :class:`SprintPacer` used before
  backends existed and remains the default (regression-locked).
* ``rc`` — :class:`RCCooling`, exponential Newtonian cooling derived from
  the package RC constants of Figure 3.  A sprint's deposit re-heats the
  junction to the melt plateau, so cooling restarts at the sustainable
  rate and slows as the package relaxes toward ambient with the package
  time constant; the cooling clock carries across idle gaps, so the
  drained energy from accumulated idle ``t0`` over a further gap ``dt``
  is ``P_sus * tau * e^(-t0/tau) * (1 - e^(-dt/tau))`` instead of the
  linear model's ``P_sus * dt``.  As ``tau`` grows the exponential
  flattens and the drain converges to the linear reservoir (locked by a
  property test).
* ``pcm`` — :class:`PcmReservoir`, the enthalpy formulation of
  :mod:`repro.thermal.pcm` run per request: deposits raise the block's
  enthalpy, idle cooling follows the piecewise liquid / melt-plateau /
  solid physics of Figure 4, and the temperature telemetry pins at the
  melting point while the block is mixed-phase.  Latent heat drains at the
  full plateau power but the last (sensible) fraction of the reservoir
  drains exponentially slowly, which is exactly where the linear model is
  optimistic.

All three expose the same reservoir interface, so the pacer's sprint
decisions (full, partial, refused) are backend-agnostic; only the drain
dynamics and the telemetry differ.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, replace

from repro.core.config import SystemConfig
from repro.thermal.package import ConventionalPackage, PcmPackage, ThermalLimits
from repro.thermal.pcm import PhaseChangeBlock

__all__ = [
    "THERMAL_BACKENDS",
    "LinearReservoir",
    "PcmReservoir",
    "RCCooling",
    "ThermalBackend",
    "ThermalSpec",
]

#: Backend names a :class:`ThermalSpec` can select.
THERMAL_BACKENDS = ("linear", "rc", "pcm")


def _cooling_resistance_k_w(package: PcmPackage | ConventionalPackage) -> float:
    """Resistance of the cooling path the stored sprint heat drains through.

    For the PCM package this is the path from the storage block to ambient
    (resistances 3 of Figure 3(d)); a conventional package cools through its
    full junction-to-ambient stack.
    """
    if isinstance(package, PcmPackage):
        return package.pcm_to_case_k_w + package.case_to_ambient_k_w
    return package.total_resistance_k_w


class ThermalBackend(abc.ABC):
    """Stored-heat state of one device's package, behind a reservoir interface.

    The contract the pacer (and through it the serving engine) relies on:

    * ``capacity_j`` and ``stored_heat_j`` define the headroom a sprint may
      deposit into; both are non-negative and ``stored_heat_j`` never
      exceeds ``capacity_j`` as long as deposits respect the headroom.
    * :meth:`projected_stored_heat_j` is a *pure* projection of the stored
      heat after an idle interval — dispatchers rank devices with it, so it
      must equal what :meth:`drain` then actually produces (property-tested
      per backend).
    * :meth:`deposit` and :meth:`drain` mutate the state and keep the
      energy ledger (``total_deposited_j`` / ``total_drained_j``), so
      ``total_deposited_j - total_drained_j == stored_heat_j`` from a fresh
      (or :meth:`reset`) backend.
    * ``temperature_c`` and ``melt_fraction`` are telemetry only — they
      never influence a sprint decision, but they ride on every outcome so
      serving metrics can report package physics.
    """

    name = "base"

    def __init__(self, limits: ThermalLimits) -> None:
        self.limits = limits
        self._deposited_j = 0.0
        self._drained_j = 0.0

    # -- reservoir state -------------------------------------------------------

    @property
    @abc.abstractmethod
    def capacity_j(self) -> float:
        """Heat the package can absorb above sustained operation."""

    @property
    @abc.abstractmethod
    def stored_heat_j(self) -> float:
        """Heat currently stored in the package (0 = fully cooled)."""

    @property
    def headroom_j(self) -> float:
        """Budget a sprint arriving now could still deposit."""
        return max(0.0, self.capacity_j - self.stored_heat_j)

    @abc.abstractmethod
    def projected_stored_heat_j(self, idle_s: float) -> float:
        """Stored heat after ``idle_s`` seconds of idle cooling, without mutating."""

    # -- energy ledger ---------------------------------------------------------

    @property
    def total_deposited_j(self) -> float:
        """Sum of all deposits since construction or the last reset."""
        return self._deposited_j

    @property
    def total_drained_j(self) -> float:
        """Sum of all heat drained since construction or the last reset."""
        return self._drained_j

    # -- dynamics --------------------------------------------------------------

    def deposit(self, joules: float) -> None:
        """Add a sprint's excess heat to the reservoir."""
        if joules < 0:
            raise ValueError("deposited heat must be non-negative")
        self._deposited_j += joules
        self._apply_deposit(joules)

    def drain(self, idle_s: float) -> None:
        """Cool over an idle interval of ``idle_s`` seconds."""
        if idle_s < 0:
            raise ValueError("idle interval must be non-negative")
        before = self.stored_heat_j
        self._apply_drain(idle_s)
        self._drained_j += before - self.stored_heat_j

    def reset(self) -> None:
        """Return to the fully-cooled state and clear the energy ledger."""
        self._deposited_j = 0.0
        self._drained_j = 0.0
        self._reset_state()

    @abc.abstractmethod
    def _apply_deposit(self, joules: float) -> None: ...

    @abc.abstractmethod
    def _apply_drain(self, idle_s: float) -> None: ...

    @abc.abstractmethod
    def _reset_state(self) -> None: ...

    # -- telemetry -------------------------------------------------------------

    @property
    def temperature_c(self) -> float:
        """Package temperature implied by the stored heat.

        The base implementation maps the fill fraction linearly onto the
        ambient-to-junction-limit range — a coarse proxy for backends with
        no temperature state of their own.  Physics-backed backends
        override it.
        """
        if self.capacity_j == 0:
            return self.limits.ambient_c
        fill = self.stored_heat_j / self.capacity_j
        return self.limits.ambient_c + fill * self.limits.headroom_c

    @property
    def melt_fraction(self) -> float:
        """Fraction of the PCM that is liquid (0 for backends without PCM state)."""
        return 0.0


class LinearReservoir(ThermalBackend):
    """The paper's rule-of-thumb reservoir: constant-rate drain.

    Capacity is the package sprint budget; drains run at the sustainable
    power regardless of how full the reservoir is.  This is exactly the
    arithmetic :class:`~repro.core.pacing.SprintPacer` inlined before
    backends existed — the default, and regression-locked bit-identical.
    """

    name = "linear"

    def __init__(
        self, capacity_j: float, drain_power_w: float, limits: ThermalLimits
    ) -> None:
        if capacity_j < 0:
            raise ValueError("reservoir capacity must be non-negative")
        if drain_power_w <= 0:
            raise ValueError("drain power must be positive")
        super().__init__(limits)
        self._capacity_j = capacity_j
        self.drain_power_w = drain_power_w
        self._stored_j = 0.0

    @property
    def capacity_j(self) -> float:
        return self._capacity_j

    @property
    def stored_heat_j(self) -> float:
        return self._stored_j

    def projected_stored_heat_j(self, idle_s: float) -> float:
        return max(0.0, self._stored_j - self.drain_power_w * idle_s)

    def _apply_deposit(self, joules: float) -> None:
        self._stored_j += joules

    def _apply_drain(self, idle_s: float) -> None:
        self._stored_j = max(0.0, self._stored_j - self.drain_power_w * idle_s)

    def _reset_state(self) -> None:
        self._stored_j = 0.0

    def absorb_batch(
        self, stored_heat_j: float, deposited_j: float, drained_j: float
    ) -> None:
        """Apply a vectorized run's net effect in one step.

        The engine's batched fast path (:mod:`repro.traffic.fastpath`)
        replays this reservoir's exact arithmetic in numpy and hands back
        the final stored heat plus the run's ledger deltas, so the backend
        ends bit-identical to having processed every request scalar-wise.
        Only the linear reservoir has the closed vector form, hence the
        method lives here and not on the base class.
        """
        if stored_heat_j < 0 or deposited_j < 0 or drained_j < 0:
            raise ValueError("batch state must be non-negative")
        self._stored_j = stored_heat_j
        self._deposited_j += deposited_j
        self._drained_j += drained_j


class RCCooling(ThermalBackend):
    """Exponential Newtonian drain with the package time constant.

    A sprint's deposit re-heats the junction to the melt plateau, so
    cooling restarts at the sustainable power and decays as the package
    relaxes toward ambient: after ``t`` seconds of accumulated idle since
    the last deposit the instantaneous drain power is ``P_sus * e^(-t/tau)``.
    The cooling clock persists across idle gaps (a zero-deposit sustained
    task does not re-heat the storage block), so fragmented idle drains
    exactly as much as one contiguous gap of the same total length — the
    package approaching ambient drains ever slower, unlike the linear
    reservoir's constant rate, however the idle is sliced.  As ``tau``
    grows the exponential flattens into the linear model's constant rate
    (``lim tau→inf`` of the drained energy over any gap is ``P_sus * dt``).

    The decay envelope can return ``P_sus * tau`` joules in total, so time
    constants below ``capacity / drain_power`` would strand heat forever
    and are rejected.  The default sits exactly at that bound — it is the
    package RC constant ``R_total * C_eff`` with the reservoir's capacity
    spread over the sustained operating drop, and it makes a *full*
    reservoir's drain exactly Newtonian (``Q(t) = capacity * e^(-t/tau)``,
    asymptotically reaching ambient, never stranding).
    """

    name = "rc"

    def __init__(
        self,
        capacity_j: float,
        drain_power_w: float,
        time_constant_s: float,
        limits: ThermalLimits,
    ) -> None:
        if capacity_j < 0:
            raise ValueError("reservoir capacity must be non-negative")
        if drain_power_w <= 0:
            raise ValueError("drain power must be positive")
        if time_constant_s <= 0:
            raise ValueError("time constant must be positive")
        if time_constant_s < capacity_j / drain_power_w:
            raise ValueError(
                "rc time constant must be at least capacity / drain power "
                f"({capacity_j / drain_power_w:.3f}s here); a faster decay "
                "could never return every stored joule to ambient"
            )
        super().__init__(limits)
        self._capacity_j = capacity_j
        self.drain_power_w = drain_power_w
        self.time_constant_s = time_constant_s
        self._stored_j = 0.0
        self._idle_since_deposit_s = 0.0

    @property
    def capacity_j(self) -> float:
        return self._capacity_j

    @property
    def stored_heat_j(self) -> float:
        return self._stored_j

    def projected_stored_heat_j(self, idle_s: float) -> float:
        # Drained energy is the integral of P_sus * e^(-t/tau) from the
        # accumulated idle t0 to t0 + idle_s.  -expm1(-x) = 1 - e^(-x)
        # without cancellation, so a huge tau degrades gracefully to the
        # linear drain instead of losing bits.
        tau = self.time_constant_s
        drained = (
            self.drain_power_w
            * tau
            * math.exp(-self._idle_since_deposit_s / tau)
            * -math.expm1(-idle_s / tau)
        )
        return max(0.0, self._stored_j - drained)

    def _apply_deposit(self, joules: float) -> None:
        self._stored_j += joules
        # The sprint re-heated the junction: cooling restarts at full rate.
        self._idle_since_deposit_s = 0.0

    def _apply_drain(self, idle_s: float) -> None:
        self._stored_j = self.projected_stored_heat_j(idle_s)
        self._idle_since_deposit_s += idle_s

    def _reset_state(self) -> None:
        self._stored_j = 0.0
        self._idle_since_deposit_s = 0.0


class PcmReservoir(ThermalBackend):
    """Enthalpy-tracked reservoir reproducing the Figure 4 melt plateau.

    The state is a :class:`~repro.thermal.pcm.PhaseChangeBlock` holding the
    package's PCM plus the junction's sensible capacity (lumped into the
    block's specific heat, so the backend's capacity equals the package
    sprint budget).  Deposits raise the block's enthalpy; idle cooling
    integrates the piecewise Figure 4 physics toward ambient through the
    cooling-path resistance:

    * liquid (fully molten): temperature decays exponentially toward
      ambient until the block reaches the melting point,
    * melt plateau (mixed phase): temperature is pinned at the melting
      point, so the block sheds heat at the constant plateau power,
    * solid: exponential decay again, asymptotically approaching ambient —
      the last fraction of the reservoir drains ever more slowly, which is
      where the linear model's constant-rate drain is optimistic.

    ``temperature_c`` and ``melt_fraction`` are the block's own state, so
    per-request telemetry shows the plateau directly.
    """

    name = "pcm"

    def __init__(
        self,
        block: PhaseChangeBlock,
        cooling_resistance_k_w: float,
        limits: ThermalLimits,
    ) -> None:
        if cooling_resistance_k_w <= 0:
            raise ValueError("cooling resistance must be positive")
        super().__init__(limits)
        self.block = block
        self.cooling_resistance_k_w = cooling_resistance_k_w
        block.set_temperature(limits.ambient_c)
        # Enthalpy of the fully-cooled block; stored heat is measured above it.
        self._floor_j = block.enthalpy_j

    # -- derived constants -----------------------------------------------------

    @property
    def plateau_power_w(self) -> float:
        """Cooling power while the block sits at the melting point."""
        return (
            self.block.melting_point_c - self.limits.ambient_c
        ) / self.cooling_resistance_k_w

    @property
    def solid_time_constant_s(self) -> float:
        """RC time constant of single-phase cooling toward ambient."""
        return self.cooling_resistance_k_w * self.block.sensible_capacity_j_k

    @property
    def capacity_j(self) -> float:
        latent = self.block.latent_capacity_j
        sensible = self.block.sensible_capacity_j_k * self.limits.headroom_c
        return latent + sensible

    @property
    def stored_heat_j(self) -> float:
        return self.block.enthalpy_j - self._floor_j

    def projected_stored_heat_j(self, idle_s: float) -> float:
        return self._cooled_enthalpy(self.block.enthalpy_j, idle_s) - self._floor_j

    def _apply_deposit(self, joules: float) -> None:
        self.block.add_heat(joules)

    def _apply_drain(self, idle_s: float) -> None:
        cooled = self._cooled_enthalpy(self.block.enthalpy_j, idle_s)
        self.block.add_heat(cooled - self.block.enthalpy_j)

    def _reset_state(self) -> None:
        self.block.set_temperature(self.limits.ambient_c)

    def _cooled_enthalpy(self, h: float, idle_s: float) -> float:
        """Enthalpy after ``idle_s`` seconds of cooling toward ambient (pure).

        Piecewise closed form over the three phases; enthalpy ``h`` is the
        block's convention (0 = fully solid at the melting point).
        """
        if idle_s == 0.0:
            # Exact no-op: the piecewise round trip below is float-lossy.
            return h
        sensible = self.block.sensible_capacity_j_k
        latent = self.block.latent_capacity_j
        plateau_c = self.block.melting_point_c - self.limits.ambient_c
        tau = self.solid_time_constant_s
        remaining = idle_s

        if h > latent:
            # Liquid: Newton cooling until the block is back at the melt point.
            above_ambient = plateau_c + (h - latent) / sensible
            to_melt_s = tau * math.log(above_ambient / plateau_c)
            if remaining < to_melt_s:
                cooled = above_ambient * math.exp(-remaining / tau)
                return latent + sensible * (cooled - plateau_c)
            remaining -= to_melt_s
            h = latent

        if h > 0.0:
            # Melt plateau: temperature pinned, constant cooling power.
            to_solid_s = h / self.plateau_power_w
            if remaining < to_solid_s:
                return h - self.plateau_power_w * remaining
            remaining -= to_solid_s
            h = 0.0

        # Solid: Newton cooling asymptotically toward the ambient floor.
        above_ambient = plateau_c + h / sensible
        cooled = above_ambient * math.exp(-remaining / tau)
        return sensible * (cooled - plateau_c)

    # -- telemetry -------------------------------------------------------------

    @property
    def temperature_c(self) -> float:
        return self.block.temperature_c

    @property
    def melt_fraction(self) -> float:
        return self.block.melt_fraction


@dataclass(frozen=True)
class ThermalSpec:
    """A thermal backend plus its knobs, independent of any platform.

    The sweep-friendly form of a backend: frozen (hashable, so it can sit
    on a grid axis and cross process boundaries) and built into a live
    :class:`ThermalBackend` against a concrete
    :class:`~repro.core.config.SystemConfig`, which supplies the package
    constants (sprint budget, sustainable power, RC path, PCM block).

    Knobs by backend (all others must stay unset):

    * ``linear`` — none.
    * ``rc`` — ``time_constant_s`` (optional; default derived from the
      package RC constants).
    * ``pcm`` — none (the block comes from the config's package); requires
      a :class:`~repro.thermal.package.PcmPackage`.
    """

    backend: str = "linear"
    time_constant_s: float | None = None

    def __post_init__(self) -> None:
        if self.backend not in THERMAL_BACKENDS:
            raise ValueError(
                f"unknown thermal backend {self.backend!r}; "
                f"available: {THERMAL_BACKENDS}"
            )
        if self.time_constant_s is not None:
            if self.backend != "rc":
                raise ValueError(
                    f"{self.backend} backend does not take time_constant_s"
                )
            if self.time_constant_s <= 0:
                raise ValueError("time constant must be positive (or None)")

    # -- constructors ----------------------------------------------------------

    @classmethod
    def linear(cls) -> "ThermalSpec":
        return cls()

    @classmethod
    def rc(cls, time_constant_s: float | None = None) -> "ThermalSpec":
        return cls(backend="rc", time_constant_s=time_constant_s)

    @classmethod
    def pcm(cls) -> "ThermalSpec":
        return cls(backend="pcm")

    # -- use -------------------------------------------------------------------

    @property
    def label(self) -> str:
        """Compact form for sweep tables, e.g. ``rc[12s]`` or ``pcm``."""
        if self.backend == "rc" and self.time_constant_s is not None:
            return f"rc[{self.time_constant_s:g}s]"
        return self.backend

    def default_time_constant_s(self, config: SystemConfig) -> float:
        """Package time constant: total resistance x effective capacitance.

        The reservoir's effective capacitance is its capacity spread over
        the sustained operating drop, so the product equals
        ``capacity / sustainable_power`` — the smallest constant whose
        decay envelope can return every stored joule to ambient (see
        :class:`RCCooling`), tracking the package design rather than being
        a free parameter.
        """
        package = config.package
        capacity_j = package.sprint_budget_j(config.sprint_power_w)
        return capacity_j / config.sustainable_power_w

    def build(self, config: SystemConfig) -> ThermalBackend:
        """Instantiate the backend for a concrete platform."""
        package = config.package
        if self.backend == "pcm":
            if not isinstance(package, PcmPackage):
                raise TypeError(
                    "the pcm backend needs a PcmPackage; "
                    f"config has {type(package).__name__}"
                )
            # Lump the junction's sensible capacity into the block so the
            # backend's capacity equals the package sprint budget.
            material = replace(
                package.pcm_material,
                name=f"{package.pcm_material.name}+junction",
                specific_heat_j_gk=package.pcm_material.specific_heat_j_gk
                + package.junction_capacitance_j_k / package.pcm_mass_g,
            )
            block = PhaseChangeBlock(
                mass_g=package.pcm_mass_g,
                material=material,
                initial_temperature_c=package.limits.ambient_c,
            )
            return PcmReservoir(
                block, _cooling_resistance_k_w(package), package.limits
            )
        capacity_j = package.sprint_budget_j(config.sprint_power_w)
        if self.backend == "rc":
            tau = (
                self.time_constant_s
                if self.time_constant_s is not None
                else self.default_time_constant_s(config)
            )
            return RCCooling(
                capacity_j, config.sustainable_power_w, tau, package.limits
            )
        return LinearReservoir(
            capacity_j, config.sustainable_power_w, package.limits
        )
