"""Sprint policy: when to sprint, with what, and how to stop.

Section 7 describes the software side of sprinting: sprint whenever there is
enough thread-level parallelism, watch the thermal budget, and when it nears
exhaustion migrate every thread to one core (with a hardware frequency
throttle as the last resort).  :class:`SprintPolicy` encodes those choices
as data so experiments and ablations can vary them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.modes import ExecutionMode, TerminationAction
from repro.energy.dvfs import DvfsModel, OperatingPoint, PAPER_DVFS


@dataclass(frozen=True)
class SprintPolicy:
    """Tunable decisions of the sprint runtime."""

    #: Cores activated for a parallel sprint (16 in the paper's design).
    sprint_cores: int = 16
    #: Cores that can run within the sustainable budget (1 in the paper).
    sustainable_cores: int = 1
    #: Maximum sprint duration the design targets (1 second in Section 3).
    #: This is the duration the thermal design is sized for; the runtime
    #: terminates sprints on budget exhaustion, and only enforces this as a
    #: hard cutoff when ``enforce_max_duration`` is set (an ablation knob).
    max_sprint_duration_s: float = 1.0
    enforce_max_duration: bool = False
    #: Minimum fraction of the thermal budget required to start a sprint.
    min_budget_fraction: float = 0.05
    #: What to do when the budget is exhausted mid-computation.
    termination: TerminationAction = TerminationAction.MIGRATE_TO_SINGLE_CORE
    #: DVFS rules used when sprinting by voltage boosting instead.
    dvfs: DvfsModel = PAPER_DVFS

    def __post_init__(self) -> None:
        if self.sprint_cores < 1:
            raise ValueError("sprint core count must be positive")
        if self.sustainable_cores < 1:
            raise ValueError("sustainable core count must be positive")
        if self.sprint_cores < self.sustainable_cores:
            raise ValueError("sprint cores must be at least the sustainable cores")
        if self.max_sprint_duration_s <= 0:
            raise ValueError("maximum sprint duration must be positive")
        if not 0.0 <= self.min_budget_fraction <= 1.0:
            raise ValueError("minimum budget fraction must be in [0, 1]")

    # -- derived quantities ---------------------------------------------------------

    @property
    def power_headroom(self) -> float:
        """Sprint power as a multiple of the sustainable power (16x in the paper)."""
        return self.sprint_cores / self.sustainable_cores

    def sprint_power_w(self, core_power_w: float) -> float:
        """Chip power during a parallel sprint with every core active."""
        if core_power_w <= 0:
            raise ValueError("core power must be positive")
        return self.sprint_cores * core_power_w

    # -- decisions --------------------------------------------------------------------

    def cores_to_activate(self, runnable_threads: int) -> int:
        """How many cores a sprint should wake for a given thread count.

        Software sprints only when there are more runnable threads than
        powered cores (Section 7); it never wakes more cores than threads.
        """
        if runnable_threads < 1:
            raise ValueError("thread count must be positive")
        return max(self.sustainable_cores, min(self.sprint_cores, runnable_threads))

    def should_sprint(self, runnable_threads: int, budget_fraction: float) -> bool:
        """Sprint iff there is parallelism to exploit and budget to spend."""
        if not 0.0 <= budget_fraction <= 1.0:
            raise ValueError("budget fraction must be in [0, 1]")
        return (
            runnable_threads > self.sustainable_cores
            and budget_fraction >= self.min_budget_fraction
        )

    def dvfs_sprint_point(self) -> OperatingPoint:
        """Operating point of a single-core DVFS sprint using the same headroom.

        The paper's cube-root rule: a 16x power headroom buys roughly a
        2.5x frequency boost (Section 8.4).
        """
        return self.dvfs.boosted_point_for_headroom(self.power_headroom)

    def throttled_point(self, active_cores: int) -> OperatingPoint:
        """Emergency operating point when cores stay active past exhaustion."""
        return self.dvfs.throttled_point(active_cores, self.sustainable_cores)

    def post_sprint_cores(self, active_cores: int) -> int:
        """Cores that remain powered after the sprint terminates."""
        if self.termination is TerminationAction.MIGRATE_TO_SINGLE_CORE:
            return self.sustainable_cores
        return active_cores

    def execution_cores(self, mode: ExecutionMode) -> int:
        """Cores used at the start of a task under each execution mode."""
        if mode is ExecutionMode.PARALLEL_SPRINT:
            return self.sprint_cores
        return self.sustainable_cores

    # -- variants for ablations --------------------------------------------------------

    def with_sprint_cores(self, cores: int) -> "SprintPolicy":
        """Copy with a different sprint intensity (Figure 10's 1/4/16/64)."""
        return replace(self, sprint_cores=cores)

    def with_termination(self, action: TerminationAction) -> "SprintPolicy":
        """Copy with a different exhaustion response (ablation)."""
        return replace(self, termination=action)


#: The paper's design point: sprint with 16 cores, sustain 1, migrate on exhaustion.
PAPER_POLICY = SprintPolicy()
