"""Operating modes of a sprint-enabled system."""

from __future__ import annotations

from enum import Enum


class SprintMode(Enum):
    """Thermal/operational state of the chip (Figure 2's three regimes)."""

    #: All cores dark; the system waits for work at ambient temperature.
    IDLE = "idle"
    #: Single-core operation within the sustainable thermal budget.
    SUSTAINED = "sustained"
    #: Many cores (or a boosted core) active above the sustainable budget.
    SPRINT = "sprint"
    #: Sprint capacity exhausted and the hardware throttled frequency because
    #: software did not deactivate cores in time (Section 7's last resort).
    THROTTLED = "throttled"
    #: Computation finished; the package is dissipating stored heat.
    COOLDOWN = "cooldown"


class ExecutionMode(Enum):
    """How a task is executed for the Section 8 comparisons."""

    #: Single core at the nominal operating point (the non-sprint baseline).
    SUSTAINED_SINGLE_CORE = "sustained"
    #: Parallel sprint: activate all sprint cores at nominal V/f.
    PARALLEL_SPRINT = "parallel"
    #: DVFS sprint: one core boosted to use the same power headroom.
    DVFS_SPRINT = "dvfs"


class TerminationAction(Enum):
    """What happens when the sprint budget is exhausted (Section 7)."""

    #: Software migrates all threads to one core and powers the rest down.
    MIGRATE_TO_SINGLE_CORE = "migrate"
    #: Hardware divides the clock by the active-core count as a last resort.
    HARDWARE_THROTTLE = "throttle"
