"""The sprint controller: the runtime state machine of Section 7.

The controller decides how a task begins executing (sprint or not, how many
cores, which operating point), watches the thermal budget as energy samples
arrive each quantum, and when the budget nears exhaustion terminates the
sprint — migrating threads to a single core in the common case, or throttling
the clock as the hardware's last resort.  It also enforces the hard junction
limit as a backstop in case the energy-based estimate is optimistic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.budget import EnergyBudgetEstimator, ThermalBudgetEstimator
from repro.core.config import SystemConfig
from repro.core.modes import ExecutionMode, SprintMode, TerminationAction
from repro.energy.dvfs import OperatingPoint


@dataclass(frozen=True)
class SprintDecision:
    """How the controller wants the chip configured right now."""

    mode: SprintMode
    cores: int
    operating_point: OperatingPoint
    #: Delay before the cores may execute (the gradual-activation ramp).
    activation_delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("at least one core must be active")
        if self.activation_delay_s < 0:
            raise ValueError("activation delay must be non-negative")


@dataclass(frozen=True)
class ModeTransition:
    """Record of one mode change (for the result's mode timeline)."""

    time_s: float
    mode: SprintMode
    cores: int

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError("transition time must be non-negative")
        if self.cores < 0:
            raise ValueError("core count must be non-negative")


class SprintController:
    """Tracks sprint state and issues reconfiguration decisions."""

    def __init__(
        self,
        config: SystemConfig,
        budget: ThermalBudgetEstimator | None = None,
    ) -> None:
        self.config = config
        self.policy = config.policy
        self.budget = budget or EnergyBudgetEstimator(config.package)
        self._mode = SprintMode.IDLE
        self._cores = 0
        self._operating_point = config.machine.nominal
        self._time_s = 0.0
        self._sprint_started_at_s: float | None = None
        self._sprint_exhausted_at_s: float | None = None
        self._transitions: list[ModeTransition] = []

    # -- queries -----------------------------------------------------------------

    @property
    def mode(self) -> SprintMode:
        """Current operating mode."""
        return self._mode

    @property
    def active_cores(self) -> int:
        """Currently powered core count."""
        return self._cores

    @property
    def operating_point(self) -> OperatingPoint:
        """Current voltage/frequency point."""
        return self._operating_point

    @property
    def sprint_exhausted_at_s(self) -> float | None:
        """Time at which the sprint budget ran out, if it did."""
        return self._sprint_exhausted_at_s

    @property
    def transitions(self) -> list[ModeTransition]:
        """All mode changes so far (time, mode, cores)."""
        return list(self._transitions)

    @property
    def is_sprinting(self) -> bool:
        """True while the chip exceeds its sustainable budget."""
        return self._mode is SprintMode.SPRINT

    # -- task lifecycle -----------------------------------------------------------

    def begin_task(
        self, runnable_threads: int, execution_mode: ExecutionMode
    ) -> SprintDecision:
        """Configure the chip for a new task and return the initial decision."""
        if runnable_threads < 1:
            raise ValueError("a task needs at least one runnable thread")
        if self._mode not in (SprintMode.IDLE, SprintMode.COOLDOWN):
            raise RuntimeError(f"cannot begin a task while in mode {self._mode}")

        if execution_mode is ExecutionMode.SUSTAINED_SINGLE_CORE:
            decision = SprintDecision(
                mode=SprintMode.SUSTAINED,
                cores=self.policy.sustainable_cores,
                operating_point=self.config.machine.nominal,
            )
        elif execution_mode is ExecutionMode.DVFS_SPRINT:
            point = self.policy.dvfs_sprint_point()
            self.budget.start_sprint(self.config.sprint_power_w)
            decision = SprintDecision(
                mode=SprintMode.SPRINT,
                cores=self.policy.sustainable_cores,
                operating_point=point,
            )
        else:
            cores = self.policy.cores_to_activate(runnable_threads)
            sprinting = self.policy.should_sprint(
                runnable_threads, self.budget.remaining_fraction
            )
            if sprinting and cores > self.policy.sustainable_cores:
                self.budget.start_sprint(
                    cores * self.config.core_power.active_power_w
                )
                decision = SprintDecision(
                    mode=SprintMode.SPRINT,
                    cores=cores,
                    operating_point=self.config.machine.nominal,
                    activation_delay_s=self.config.activation.duration_s(cores),
                )
            else:
                decision = SprintDecision(
                    mode=SprintMode.SUSTAINED,
                    cores=self.policy.sustainable_cores,
                    operating_point=self.config.machine.nominal,
                )

        self._apply(decision)
        if decision.mode is SprintMode.SPRINT:
            self._sprint_started_at_s = self._time_s
        return decision

    def on_quantum(
        self, energy_j: float, dt_s: float, junction_c: float
    ) -> SprintDecision | None:
        """Account one quantum; returns a new decision if the chip must reconfigure."""
        if dt_s < 0 or energy_j < 0:
            raise ValueError("time and energy must be non-negative")
        self._time_s += dt_s
        if self._mode is not SprintMode.SPRINT:
            return None

        self.budget.record(energy_j, dt_s, junction_c)
        sprint_elapsed = self._time_s - (self._sprint_started_at_s or 0.0)
        over_duration = (
            self.policy.enforce_max_duration
            and sprint_elapsed >= self.policy.max_sprint_duration_s
        )
        over_temperature = junction_c >= self.config.package.limits.max_junction_c
        if self.budget.exhausted or over_duration or over_temperature:
            return self._terminate_sprint()
        return None

    def finish_task(self) -> None:
        """The workload completed: all cores idle and the package cools."""
        self._mode = SprintMode.COOLDOWN
        self._cores = 0
        self._transitions.append(ModeTransition(self._time_s, self._mode, 0))

    # -- internals ----------------------------------------------------------------------

    def _terminate_sprint(self) -> SprintDecision:
        """Budget exhausted: migrate to one core or throttle the clock."""
        self._sprint_exhausted_at_s = self._time_s
        if self.policy.termination is TerminationAction.MIGRATE_TO_SINGLE_CORE:
            decision = SprintDecision(
                mode=SprintMode.SUSTAINED,
                cores=self.policy.sustainable_cores,
                operating_point=self.config.machine.nominal,
            )
        else:
            decision = SprintDecision(
                mode=SprintMode.THROTTLED,
                cores=self._cores,
                operating_point=self.policy.throttled_point(self._cores),
            )
        self._apply(decision)
        return decision

    def _apply(self, decision: SprintDecision) -> None:
        self._mode = decision.mode
        self._cores = decision.cores
        self._operating_point = decision.operating_point
        self._transitions.append(
            ModeTransition(self._time_s, decision.mode, decision.cores)
        )
