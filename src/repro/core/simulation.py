"""End-to-end sprint simulation: architecture + energy + thermal + runtime.

:class:`SprintSimulation` reproduces the coupled evaluation of Section 8:
the execution engine retires a workload quantum by quantum, its per-quantum
dynamic energy drives the RC thermal network (the paper samples energy every
1000 cycles for the same purpose), and the sprint controller watches the
thermal budget, terminating the sprint when it runs out by migrating all
threads onto a single core (or throttling, for the ablation).

Typical use::

    from repro import SprintSimulation, SystemConfig
    from repro.workloads import kernel_suite

    sim = SprintSimulation(SystemConfig.paper_default())
    sprint = sim.run(kernel_suite()["sobel"].workload("B"))
    baseline = sim.run_baseline(kernel_suite()["sobel"].workload("B"))
    print(sprint.speedup_over(baseline))
"""

from __future__ import annotations

import numpy as np

from repro.arch.simulator import ExecutionEngine
from repro.core.budget import ThermalBudgetEstimator
from repro.core.config import SystemConfig
from repro.core.controller import SprintController
from repro.core.metrics import ModeInterval, SprintMetrics, SprintResult
from repro.core.modes import ExecutionMode, SprintMode
from repro.thermal.package import JUNCTION
from repro.thermal.transient import CooldownResult, simulate_cooldown
from repro.workloads.descriptor import WorkloadDescriptor


class SprintSimulation:
    """Runs workloads on a sprint-enabled system configuration."""

    def __init__(self, config: SystemConfig | None = None) -> None:
        self.config = config or SystemConfig.paper_default()

    # -- public API ---------------------------------------------------------------

    def run(
        self,
        workload: WorkloadDescriptor,
        execution_mode: ExecutionMode = ExecutionMode.PARALLEL_SPRINT,
        n_threads: int | None = None,
        budget: ThermalBudgetEstimator | None = None,
        max_time_s: float = 600.0,
        quantum_s: float | None = None,
    ) -> SprintResult:
        """Execute one workload under the given mode and return the result."""
        if max_time_s <= 0:
            raise ValueError("maximum simulated time must be positive")
        config = self.config
        if quantum_s is not None:
            config = config.with_quantum(quantum_s)
        threads = self._thread_count(execution_mode, n_threads)

        network = config.package.build()
        engine = ExecutionEngine(
            workload,
            machine=config.machine,
            n_threads=threads,
            power_model=config.core_power,
        )
        controller = SprintController(config, budget=budget)
        decision = controller.begin_task(threads, execution_mode)
        engine.set_active_cores(decision.cores)
        operating_point = decision.operating_point

        metrics = SprintMetrics()
        junction_trace: list[float] = [network.temperature(JUNCTION)]
        trace_times: list[float] = [0.0]
        mode_timeline: list[ModeInterval] = []
        mode_started_at = 0.0
        current_mode = decision.mode
        current_cores = decision.cores
        elapsed = 0.0
        sprint_instructions = 0.0

        # Gradual core activation (Section 5.3): cores may not execute until
        # the supply has ramped; they idle at sleep power meanwhile.
        if decision.activation_delay_s > 0:
            elapsed = self._simulate_activation_ramp(
                network, metrics, decision, controller, junction_trace, trace_times
            )

        while not engine.done:
            if elapsed >= max_time_s:
                raise RuntimeError(
                    f"workload {workload.name!r} did not finish within {max_time_s}s"
                )
            sample = engine.advance(config.quantum_s, operating_point=operating_point)
            dt = sample.dt_s
            power = sample.chip_power_w
            network.step(dt, {JUNCTION: power})
            junction_c = network.temperature(JUNCTION)
            elapsed += dt

            metrics.record_quantum(
                mode=current_mode,
                dt_s=dt,
                energy_j=sample.energy_j,
                junction_c=junction_c,
                instructions=sample.instructions_retired,
                dram_bytes=sample.dram_bytes,
            )
            if current_mode is SprintMode.SPRINT:
                sprint_instructions += sample.instructions_retired
            junction_trace.append(junction_c)
            trace_times.append(elapsed)

            new_decision = controller.on_quantum(sample.energy_j, dt, junction_c)
            if new_decision is not None:
                mode_timeline.append(
                    ModeInterval(current_mode, mode_started_at, elapsed, current_cores)
                )
                mode_started_at = elapsed
                current_mode = new_decision.mode
                current_cores = new_decision.cores
                engine.set_active_cores(new_decision.cores)
                operating_point = new_decision.operating_point

        mode_timeline.append(
            ModeInterval(current_mode, mode_started_at, elapsed, current_cores)
        )
        controller.finish_task()

        return SprintResult(
            workload_name=workload.name,
            input_label=workload.input_label,
            execution_mode=execution_mode,
            completed=True,
            total_time_s=elapsed,
            metrics=metrics,
            mode_timeline=mode_timeline,
            sprint_completion_fraction=(
                sprint_instructions / workload.total_instructions
            ),
            sprint_exhausted_at_s=controller.sprint_exhausted_at_s,
            junction_trace_c=np.array(junction_trace),
            trace_times_s=np.array(trace_times),
            execution_trace=engine.trace,
        )

    def run_baseline(
        self,
        workload: WorkloadDescriptor,
        max_time_s: float = 600.0,
        quantum_s: float | None = None,
    ) -> SprintResult:
        """The paper's non-sprinting baseline: a single core at nominal V/f."""
        return self.run(
            workload,
            execution_mode=ExecutionMode.SUSTAINED_SINGLE_CORE,
            max_time_s=max_time_s,
            quantum_s=quantum_s,
        )

    def run_dvfs_sprint(
        self,
        workload: WorkloadDescriptor,
        max_time_s: float = 600.0,
        quantum_s: float | None = None,
    ) -> SprintResult:
        """Idealised single-core DVFS sprint with the same power headroom."""
        return self.run(
            workload,
            execution_mode=ExecutionMode.DVFS_SPRINT,
            max_time_s=max_time_s,
            quantum_s=quantum_s,
        )

    def compare_modes(
        self, workload: WorkloadDescriptor
    ) -> dict[ExecutionMode, SprintResult]:
        """Run all three Section 8 execution modes on one workload."""
        return {mode: self.run(workload, execution_mode=mode) for mode in ExecutionMode}

    def cooldown_after(
        self, result: SprintResult, duration_s: float = 30.0
    ) -> CooldownResult:
        """Post-task cooldown transient (Figure 4(b)) for a completed result.

        Rebuilds the thermal state by replaying the result's average sprint
        power for its sprint duration, then lets the package cool.
        """
        network = self.config.package.build()
        sprint_time = result.metrics.time_in(SprintMode.SPRINT)
        if sprint_time > 0:
            sprint_energy = result.metrics.energy_in(SprintMode.SPRINT)
            network.step(sprint_time, {JUNCTION: sprint_energy / sprint_time})
        return simulate_cooldown(network, self.config.package, duration_s=duration_s)

    # -- internals ------------------------------------------------------------------

    def _thread_count(self, mode: ExecutionMode, n_threads: int | None) -> int:
        if n_threads is not None:
            if n_threads < 1:
                raise ValueError("thread count must be positive")
            return n_threads
        if mode is ExecutionMode.PARALLEL_SPRINT:
            return self.config.policy.sprint_cores
        return 1

    def _simulate_activation_ramp(
        self,
        network,
        metrics: SprintMetrics,
        decision,
        controller: SprintController,
        junction_trace: list[float],
        trace_times: list[float],
    ) -> float:
        """Cores idle at sleep power while the supply ramps; returns elapsed time."""
        config = self.config
        delay = decision.activation_delay_s
        idle_power = (
            decision.cores * config.core_power.sleep_power_w(decision.operating_point)
        )
        network.step(delay, {JUNCTION: idle_power})
        junction_c = network.temperature(JUNCTION)
        metrics.record_quantum(
            mode=decision.mode,
            dt_s=delay,
            energy_j=idle_power * delay,
            junction_c=junction_c,
            instructions=0.0,
            dram_bytes=0.0,
        )
        controller.on_quantum(idle_power * delay, delay, junction_c)
        junction_trace.append(junction_c)
        trace_times.append(delay)
        return delay
