"""Thermal-budget estimators used to decide when a sprint must end.

Section 7: "our proposed design monitors energy dissipation since sprint
initiation.  Based on the dynamic energy consumption and a thermal model of
the system, the hardware estimates when the available thermal budget is
nearly exhausted."  :class:`EnergyBudgetEstimator` implements exactly that.
:class:`OracleBudgetEstimator` instead reads the (simulated) junction
temperature directly — physically unrealisable on the estimator's own terms
but useful as the upper bound against which the energy-based scheme is
ablated (DESIGN.md Section 5).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.thermal.package import PcmPackage


class ThermalBudgetEstimator(abc.ABC):
    """Common interface: track a sprint and report when it must terminate."""

    @abc.abstractmethod
    def start_sprint(self, sprint_power_w: float) -> None:
        """Reset the estimator at sprint initiation."""

    @abc.abstractmethod
    def record(self, energy_j: float, dt_s: float, junction_c: float) -> None:
        """Account one quantum of dissipated energy and elapsed time."""

    @property
    @abc.abstractmethod
    def exhausted(self) -> bool:
        """True when the sprint should be terminated now."""

    @property
    @abc.abstractmethod
    def remaining_fraction(self) -> float:
        """Estimated fraction of the sprint budget still available (0..1)."""

    def can_sprint(self, minimum_fraction: float = 0.05) -> bool:
        """Whether enough budget remains to be worth starting a sprint."""
        if not 0.0 <= minimum_fraction <= 1.0:
            raise ValueError("minimum fraction must be in [0, 1]")
        return self.remaining_fraction >= minimum_fraction


@dataclass
class EnergyBudgetEstimator(ThermalBudgetEstimator):
    """The paper's activity-based estimator: count joules since sprint start.

    The budget is the heat the package can absorb before the junction
    reaches its limit (latent heat of the PCM plus sensible headroom), minus
    the heat that leaks to ambient during the sprint, with a safety margin
    because the estimate is approximate.
    """

    package: PcmPackage
    #: Fraction of the theoretical budget held back as a guard band.
    safety_margin: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.safety_margin < 1.0:
            raise ValueError("safety margin must be in [0, 1)")
        self._budget_j = 0.0
        self._consumed_j = 0.0
        self._leak_w = 0.0
        self._elapsed_s = 0.0
        self._started = False

    def start_sprint(self, sprint_power_w: float) -> None:
        if sprint_power_w <= 0:
            raise ValueError("sprint power must be positive")
        raw_budget = self.package.sprint_budget_j(sprint_power_w)
        self._budget_j = raw_budget * (1.0 - self.safety_margin)
        # Heat leaking from the PCM toward ambient during the sprint
        # effectively extends the budget; credit it at the melt-plateau rate.
        self._leak_w = (
            self.package.melting_point_c - self.package.limits.ambient_c
        ) / (self.package.pcm_to_case_k_w + self.package.case_to_ambient_k_w)
        self._consumed_j = 0.0
        self._elapsed_s = 0.0
        self._started = True

    def record(self, energy_j: float, dt_s: float, junction_c: float) -> None:
        if not self._started:
            raise RuntimeError("record() called before start_sprint()")
        if energy_j < 0 or dt_s < 0:
            raise ValueError("energy and time must be non-negative")
        self._consumed_j += energy_j
        self._elapsed_s += dt_s

    @property
    def budget_j(self) -> float:
        """Usable sprint budget (joules), including the safety margin."""
        return self._budget_j

    @property
    def consumed_j(self) -> float:
        """Energy dissipated since sprint initiation."""
        return self._consumed_j

    @property
    def effective_budget_j(self) -> float:
        """Budget plus the heat leaked to ambient so far."""
        return self._budget_j + self._leak_w * self._elapsed_s

    @property
    def exhausted(self) -> bool:
        if not self._started:
            return False
        return self._consumed_j >= self.effective_budget_j

    @property
    def remaining_fraction(self) -> float:
        if not self._started or self._budget_j == 0.0:
            return 1.0
        remaining = max(0.0, self.effective_budget_j - self._consumed_j)
        return min(1.0, remaining / self.effective_budget_j)


@dataclass
class OracleBudgetEstimator(ThermalBudgetEstimator):
    """Ablation: terminate exactly when the junction nears its limit.

    Uses the simulated junction temperature (perfect knowledge), stopping
    ``guard_band_c`` below the maximum so the quantum granularity cannot
    overshoot the limit.
    """

    package: PcmPackage
    guard_band_c: float = 1.0

    def __post_init__(self) -> None:
        if self.guard_band_c < 0:
            raise ValueError("guard band must be non-negative")
        self._junction_c = self.package.limits.ambient_c
        self._started = False

    def start_sprint(self, sprint_power_w: float) -> None:
        if sprint_power_w <= 0:
            raise ValueError("sprint power must be positive")
        self._started = True

    def record(self, energy_j: float, dt_s: float, junction_c: float) -> None:
        if not self._started:
            raise RuntimeError("record() called before start_sprint()")
        self._junction_c = junction_c

    @property
    def threshold_c(self) -> float:
        """Junction temperature at which the sprint terminates."""
        return self.package.limits.max_junction_c - self.guard_band_c

    @property
    def exhausted(self) -> bool:
        if not self._started:
            return False
        return self._junction_c >= self.threshold_c

    @property
    def remaining_fraction(self) -> float:
        limits = self.package.limits
        span = self.threshold_c - limits.ambient_c
        if span <= 0:
            return 0.0
        remaining = max(0.0, self.threshold_c - self._junction_c)
        return min(1.0, remaining / span)
