"""Result containers for sprint simulations."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.simulator import ExecutionTrace
from repro.core.modes import ExecutionMode, SprintMode


@dataclass(frozen=True)
class ModeInterval:
    """One contiguous interval spent in a single sprint mode."""

    mode: SprintMode
    start_s: float
    end_s: float
    active_cores: int

    def __post_init__(self) -> None:
        if self.end_s < self.start_s:
            raise ValueError("interval end must not precede its start")
        if self.active_cores < 0:
            raise ValueError("active core count must be non-negative")

    @property
    def duration_s(self) -> float:
        """Length of the interval."""
        return self.end_s - self.start_s


@dataclass
class SprintMetrics:
    """Aggregated quantities accumulated while a simulation runs."""

    total_energy_j: float = 0.0
    peak_junction_c: float = float("-inf")
    peak_power_w: float = 0.0
    dram_bytes: float = 0.0
    instructions: float = 0.0
    time_by_mode_s: dict[SprintMode, float] = field(default_factory=dict)
    energy_by_mode_j: dict[SprintMode, float] = field(default_factory=dict)

    def record_quantum(
        self,
        mode: SprintMode,
        dt_s: float,
        energy_j: float,
        junction_c: float,
        instructions: float,
        dram_bytes: float,
    ) -> None:
        """Fold one quantum's observations into the aggregates."""
        if dt_s < 0 or energy_j < 0:
            raise ValueError("time and energy must be non-negative")
        self.total_energy_j += energy_j
        self.instructions += instructions
        self.dram_bytes += dram_bytes
        self.peak_junction_c = max(self.peak_junction_c, junction_c)
        if dt_s > 0:
            self.peak_power_w = max(self.peak_power_w, energy_j / dt_s)
        self.time_by_mode_s[mode] = self.time_by_mode_s.get(mode, 0.0) + dt_s
        self.energy_by_mode_j[mode] = self.energy_by_mode_j.get(mode, 0.0) + energy_j

    def time_in(self, mode: SprintMode) -> float:
        """Total time spent in one mode."""
        return self.time_by_mode_s.get(mode, 0.0)

    def energy_in(self, mode: SprintMode) -> float:
        """Total energy dissipated in one mode."""
        return self.energy_by_mode_j.get(mode, 0.0)


@dataclass
class SprintResult:
    """Outcome of executing one task under one execution mode."""

    workload_name: str
    input_label: str
    execution_mode: ExecutionMode
    completed: bool
    total_time_s: float
    metrics: SprintMetrics
    mode_timeline: list[ModeInterval]
    #: Fraction of the task's instructions retired while sprinting.
    sprint_completion_fraction: float
    #: Simulated time at which the sprint terminated (None if it covered the task).
    sprint_exhausted_at_s: float | None
    #: Junction temperature trace sampled once per quantum.
    junction_trace_c: np.ndarray
    trace_times_s: np.ndarray
    execution_trace: ExecutionTrace

    @property
    def total_energy_j(self) -> float:
        """Total dynamic energy of the task."""
        return self.metrics.total_energy_j

    @property
    def peak_junction_c(self) -> float:
        """Hottest junction temperature observed."""
        return self.metrics.peak_junction_c

    @property
    def average_power_w(self) -> float:
        """Average chip power over the task."""
        if self.total_time_s == 0:
            return 0.0
        return self.total_energy_j / self.total_time_s

    @property
    def sprint_duration_s(self) -> float:
        """Time spent in sprint mode."""
        return self.metrics.time_in(SprintMode.SPRINT)

    @property
    def sprint_was_truncated(self) -> bool:
        """True when the thermal budget ran out before the task finished."""
        return self.sprint_exhausted_at_s is not None

    def speedup_over(self, baseline: "SprintResult") -> float:
        """Responsiveness improvement over another result for the same task."""
        if self.total_time_s <= 0:
            raise ZeroDivisionError("result has zero duration")
        return baseline.total_time_s / self.total_time_s

    def energy_ratio_over(self, baseline: "SprintResult") -> float:
        """Dynamic energy normalised to another result (Figure 11)."""
        if baseline.total_energy_j <= 0:
            raise ZeroDivisionError("baseline consumed no energy")
        return self.total_energy_j / baseline.total_energy_j
