"""repro: a reproduction of "Computational Sprinting" (HPCA 2012).

The library couples four substrates -- a thermal RC network with phase
change material storage, an RLC power-delivery model, an energy model, and
a many-core performance simulator -- under a sprint runtime that activates
dark-silicon cores for sub-second bursts and accounts for the thermal budget
they consume.

Quick start::

    from repro import SprintSimulation, SystemConfig
    from repro.workloads import kernel_suite

    sim = SprintSimulation(SystemConfig.paper_default())
    workload = kernel_suite()["sobel"].workload("B")
    sprint = sim.run(workload)
    baseline = sim.run_baseline(workload)
    print(sprint.speedup_over(baseline))

See README.md for the architecture overview, the quick-start walkthrough,
and the fleet-serving layer (:mod:`repro.traffic`) that scales the
single-device reproduction to request streams.

The most commonly used classes are re-exported lazily at the top level so
that ``import repro`` stays cheap and subpackages (``repro.thermal``,
``repro.power``, ...) can be used independently.
"""

from importlib import import_module
from typing import Any

__version__ = "1.0.0"

#: Top-level names re-exported from repro.core on first access.
_CORE_EXPORTS = {
    "ExecutionMode",
    "ModeTransition",
    "SprintController",
    "SprintMetrics",
    "SprintMode",
    "SprintPacer",
    "SprintPolicy",
    "SprintResult",
    "SprintSimulation",
    "SystemConfig",
    "ThermalBackend",
    "ThermalSpec",
}

#: Top-level names re-exported from repro.traffic on first access.
_TRAFFIC_EXPORTS = {
    "FleetSimulator",
    "FleetResult",
    "PoissonArrivals",
    "SprintDevice",
    "SweepSpec",
    "TrafficSummary",
    "generate_requests",
    "run_sweep",
}

__all__ = sorted(_CORE_EXPORTS | _TRAFFIC_EXPORTS | {"__version__"})


def __getattr__(name: str) -> Any:
    if name in _CORE_EXPORTS:
        return getattr(import_module("repro.core"), name)
    if name in _TRAFFIC_EXPORTS:
        return getattr(import_module("repro.traffic"), name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__() -> list[str]:
    return __all__
