"""Figures 5/6 benchmark: supply integrity under core-activation ramps."""

from repro.experiments import fig06_activation


def test_fig06_activation_ramps(run_once, benchmark):
    """Abrupt and 1.28 us activation violate tolerance; the 128 us ramp does not."""
    result = run_once(fig06_activation.run)

    abrupt = result.by_label("instantaneous")
    fast = result.by_label("1.28us ramp")
    slow = result.by_label("128us ramp")

    # Paper's Figure 6: only the slow ramp keeps the supply within 2%.
    assert not abrupt.within_tolerance
    assert not fast.within_tolerance
    assert slow.within_tolerance
    # The droop shrinks monotonically as the ramp slows.
    assert abrupt.worst_droop_v >= fast.worst_droop_v >= slow.worst_droop_v
    # The settled voltage sits below nominal due to resistive drop (~10 mV).
    assert 0.003 <= result.supply_v - slow.settling_voltage_v <= 0.03

    benchmark.extra_info["droop_mv"] = {
        row.label: round(row.worst_droop_v * 1e3, 1) for row in result.rows
    }
    benchmark.extra_info["settled_v"] = round(slow.settling_voltage_v, 3)
