"""Ablation benchmark: sprint-termination policy (migrate vs hardware throttle).

Section 7: when the thermal budget nears exhaustion, software migrates all
threads to one core; if it cannot, hardware throttles the clock of every
active core so total power returns under the sustainable budget.  This
ablation runs a workload large enough to exhaust the constrained (1.5 mg)
package under both policies.
"""

from repro.core.config import SystemConfig
from repro.core.modes import TerminationAction
from repro.core.simulation import SprintSimulation
from repro.workloads.suite import kernel_suite


def _run_both_policies():
    workload = kernel_suite()["kmeans"].workload("C")
    base_config = SystemConfig.small_pcm()
    results = {}
    for action in TerminationAction:
        config = base_config.with_policy(base_config.policy.with_termination(action))
        simulation = SprintSimulation(config)
        sprint = simulation.run(workload)
        baseline = simulation.run_baseline(workload, quantum_s=2e-3)
        results[action] = (sprint, baseline)
    return results


def test_termination_policy_ablation(run_once, benchmark):
    """Both exhaustion policies respect the thermal limit and stay comparable."""
    results = run_once(_run_both_policies)

    migrate_sprint, migrate_base = results[TerminationAction.MIGRATE_TO_SINGLE_CORE]
    throttle_sprint, throttle_base = results[TerminationAction.HARDWARE_THROTTLE]

    # Both runs exhausted their sprint on the constrained package.
    assert migrate_sprint.sprint_was_truncated
    assert throttle_sprint.sprint_was_truncated
    # Neither policy lets the junction exceed the 70 C limit by more than
    # one quantum of overshoot.
    assert migrate_sprint.peak_junction_c < 72.0
    assert throttle_sprint.peak_junction_c < 72.0
    # Both policies land in the same band: after exhaustion the chip runs at
    # the sustainable power either way (one core at full frequency, or all
    # cores at 1/16th frequency), so neither can pull far ahead.  Throttling
    # can even edge out migration for memory-bound work because the DRAM
    # round trip costs fewer cycles at the reduced clock.
    migrate_speedup = migrate_sprint.speedup_over(migrate_base)
    throttle_speedup = throttle_sprint.speedup_over(throttle_base)
    assert migrate_speedup > 1.0
    assert throttle_speedup > 1.0
    assert 0.5 <= migrate_speedup / throttle_speedup <= 2.0

    benchmark.extra_info["migrate_speedup"] = round(migrate_speedup, 2)
    benchmark.extra_info["throttle_speedup"] = round(throttle_speedup, 2)
    benchmark.extra_info["migrate_peak_c"] = round(migrate_sprint.peak_junction_c, 1)
    benchmark.extra_info["throttle_peak_c"] = round(throttle_sprint.peak_junction_c, 1)
