"""Figure 2 benchmark: sustained vs sprint vs PCM-augmented sprint traces."""

from repro.experiments import fig02_modes


def test_fig02_execution_modes(run_once, benchmark):
    """Sprinting compresses the computation and the PCM extends the sprint."""
    result = run_once(fig02_modes.run)

    # Sprinting finishes the same work much faster than sustained execution.
    assert result.sprint_speedup > 5.0
    # The PCM-augmented sprint is at least as fast as the bare sprint.
    assert result.pcm_extends_sprint
    # All three runs retire the same cumulative computation.
    sustained_work = result.sustained.cumulative_instructions[-1]
    pcm_work = result.sprint_with_pcm.cumulative_instructions[-1]
    assert abs(sustained_work - pcm_work) / sustained_work < 0.05
    # The sprint activates many cores; sustained execution uses one.
    assert result.sprint_with_pcm.active_cores.max() > result.sustained.active_cores.max()

    benchmark.extra_info["sprint_speedup"] = round(result.sprint_speedup, 2)
    benchmark.extra_info["sustained_time_s"] = round(result.sustained.total_time_s, 3)
    benchmark.extra_info["sprint_time_s"] = round(
        result.sprint_with_pcm.total_time_s, 3
    )
