"""Section 6 benchmark: power-source feasibility for 16 x 1 W sprints."""

from repro.experiments import sec6_sources


def test_sec6_power_sources(run_once, benchmark):
    """Phone Li-ion falls short; Li-polymer, ultracap and hybrid sources suffice."""
    result = run_once(sec6_sources.run)

    # Paper: a representative phone battery (~10 W burst) cannot power 16 cores.
    assert not result.phone_battery_sufficient
    phone = result.by_name("phone-li-ion")
    assert phone.max_cores < 16
    # High-discharge Li-polymer and the ultracapacitor can.
    assert "li-polymer-high-discharge" in result.feasible_sources
    assert "nesscap-25f" in result.feasible_sources
    # The battery+ultracapacitor hybrid the paper advocates also works.
    assert any("ultracap" in name for name in result.feasible_sources)
    # Paper: ~320 power/ground pins for 16 A at 1 V and 100 mA per pin pair.
    assert 300 <= result.pins_for_sprint_current <= 340

    benchmark.extra_info["max_cores"] = {
        a.source_name: a.max_cores for a in result.assessments
    }
    benchmark.extra_info["pins_required"] = result.pins_for_sprint_current
