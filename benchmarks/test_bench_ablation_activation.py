"""Ablation benchmark: activation ramp length vs supply integrity and lost time.

Section 5.3 settles on a 128 us linear ramp.  This ablation sweeps the ramp
length to show the trade-off the paper describes: faster ramps violate the
2% supply tolerance, slower ramps are safe, and even ramps far slower than
128 us cost a negligible fraction of a sub-second sprint.
"""

from repro.power.activation import LinearRampActivation
from repro.power.pdn import PowerDeliveryNetwork

RAMPS_S = (1.28e-6, 12.8e-6, 128e-6, 1.28e-3)
SPRINT_DURATION_S = 1.0


def _ramp_sweep():
    network = PowerDeliveryNetwork()
    rows = {}
    for ramp in RAMPS_S:
        analysis = network.simulate_activation(LinearRampActivation(ramp_s=ramp))
        rows[ramp] = (analysis.within_tolerance, analysis.worst_droop_v)
    return rows


def test_activation_ramp_ablation(run_once, benchmark):
    """Slower ramps improve supply integrity at negligible performance cost."""
    rows = run_once(_ramp_sweep)

    # The fast 1.28 us ramp droops far more than any of the slower ramps,
    # whose residual "droop" is mostly the steady-state resistive drop.
    fast_droop = rows[1.28e-6][1]
    slow_droops = [rows[r][1] for r in RAMPS_S[1:]]
    assert fast_droop > 2 * max(slow_droops)
    # The paper's chosen 128 us ramp is within tolerance; the 1.28 us one is not.
    assert rows[128e-6][0]
    assert not rows[1.28e-6][0]
    # Every ramp at or slower than the paper's choice is also safe.
    assert all(rows[r][0] for r in RAMPS_S[1:])
    # Even the slowest swept ramp wastes a trivial fraction of the sprint.
    assert max(RAMPS_S) / SPRINT_DURATION_S < 0.002

    benchmark.extra_info["within_tolerance"] = {
        f"{r * 1e6:.2f}us": rows[r][0] for r in RAMPS_S
    }
    benchmark.extra_info["droop_mv"] = {
        f"{r * 1e6:.2f}us": round(rows[r][1] * 1e3, 1) for r in RAMPS_S
    }
