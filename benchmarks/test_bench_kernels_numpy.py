"""Benchmark of the real numpy kernel implementations.

These are conventional pytest-benchmark measurements (multiple rounds) of
the actual Table 1 kernel code running on a small synthetic image — they
back the characterisation layer with real, runnable implementations and
catch performance regressions in the kernels themselves.
"""

import pytest

from repro.kernels import (
    ALL_KERNELS,
    DisparityKernel,
    synthetic_image,
    synthetic_stereo_pair,
)

IMAGE_SHAPE = (96, 128)


@pytest.mark.parametrize("name", sorted(ALL_KERNELS))
def test_kernel_execution(benchmark, name):
    """Each kernel runs end-to-end on a synthetic scene and produces output."""
    kernel = ALL_KERNELS[name]()
    if isinstance(kernel, DisparityKernel):
        left, right, _ = synthetic_stereo_pair(*IMAGE_SHAPE, max_disparity=8)
        output = benchmark(kernel.run_pair, left, right)
    else:
        image = synthetic_image(*IMAGE_SHAPE, seed=7)
        output = benchmark(kernel.run, image)
    assert output.name == name
    assert output.data.size > 0
