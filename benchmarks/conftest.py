"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures once (the
experiments are deterministic, so repeated rounds would only re-measure the
same arithmetic) and records the reproduced series in
``benchmark.extra_info`` so the JSON output doubles as the data behind
EXPERIMENTS.md.
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run


@pytest.fixture
def bench_scale():
    """Scale a benchmark size by ``$REPRO_BENCH_SCALE`` (default 1.0).

    CI's benchmark smoke step sets a small scale so every benchmark's code
    path executes quickly on each push; local/full runs keep the real
    sizes.  ``floor`` keeps shrunk runs large enough to stay meaningful.
    """
    factor = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

    def _scale(n: int, floor: int = 1) -> int:
        return max(floor, int(n * factor))

    return _scale
