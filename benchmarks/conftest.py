"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures once (the
experiments are deterministic, so repeated rounds would only re-measure the
same arithmetic) and records the reproduced series in
``benchmark.extra_info`` so the JSON output doubles as the data behind
EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
