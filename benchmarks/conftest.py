"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures once (the
experiments are deterministic, so repeated rounds would only re-measure the
same arithmetic) and records the reproduced series in
``benchmark.extra_info`` so the JSON output doubles as the data behind
EXPERIMENTS.md.
"""

from __future__ import annotations

import cProfile
import io
import os
import pstats

import pytest


@pytest.fixture
def run_once(benchmark, request):
    """Run an experiment exactly once under pytest-benchmark timing.

    Setting ``REPRO_PROFILE=1`` additionally wraps the run in
    :mod:`cProfile` and prints the top 20 functions by cumulative time —
    the quick answer to "where does this benchmark actually spend its
    time?".  Profiling instruments every call, so the recorded timings
    are distorted in that mode; use it to find hotspots, not to compare
    against unprofiled numbers.
    """
    profiling = os.environ.get("REPRO_PROFILE", "") not in ("", "0")

    def _run(func, *args, **kwargs):
        if profiling:
            profile = cProfile.Profile()

            def profiled(*a, **kw):
                profile.enable()
                try:
                    return func(*a, **kw)
                finally:
                    profile.disable()

            result = benchmark.pedantic(
                profiled, args=args, kwargs=kwargs, rounds=1, iterations=1
            )
            out = io.StringIO()
            stats = pstats.Stats(profile, stream=out)
            stats.sort_stats("cumulative").print_stats(20)
            print(f"\n[REPRO_PROFILE] {request.node.name}\n{out.getvalue()}")
            return result
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run


@pytest.fixture
def bench_scale():
    """Scale a benchmark size by ``$REPRO_BENCH_SCALE`` (default 1.0).

    CI's benchmark smoke step sets a small scale so every benchmark's code
    path executes quickly on each push; local/full runs keep the real
    sizes.  ``floor`` keeps shrunk runs large enough to stay meaningful.
    """
    factor = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

    def _scale(n: int, floor: int = 1) -> int:
        return max(floor, int(n * factor))

    return _scale
