"""Ablation benchmark: PCM mass and melting point vs sprint duration.

DESIGN.md Section 5 calls out the PCM design point (60 C melting point, 150
mg mass) for ablation: how do sprint duration and cooldown change as the
mass and melting point move?
"""

from dataclasses import replace

from repro.thermal.materials import GENERIC_PCM
from repro.thermal.package import FULL_PCM_PACKAGE
from repro.thermal.transient import max_sprint_duration_s, simulate_sprint_and_cooldown

PCM_MASSES_G = (0.0015, 0.015, 0.150, 0.300)
MELTING_POINTS_C = (45.0, 55.0, 60.0, 65.0)


def _mass_sweep():
    durations = {}
    for mass in PCM_MASSES_G:
        package = FULL_PCM_PACKAGE.with_pcm_mass(mass)
        durations[mass] = max_sprint_duration_s(package, sprint_power_w=16.0)
    return durations


def _melting_point_sweep():
    results = {}
    for melt_c in MELTING_POINTS_C:
        material = replace(GENERIC_PCM, name=f"pcm-{melt_c:.0f}C", melting_point_c=melt_c)
        package = replace(FULL_PCM_PACKAGE, pcm_material=material)
        sprint, cooldown = simulate_sprint_and_cooldown(
            package, sprint_power_w=16.0, cooldown_s=60.0
        )
        results[melt_c] = (
            sprint.sprint_duration_s,
            cooldown.time_to_near_ambient_s,
        )
    return results


def test_pcm_mass_ablation(run_once, benchmark):
    """More PCM means longer sprints, with diminishing sensitivity below ~10 mg."""
    durations = run_once(_mass_sweep)

    ordered = [durations[m] for m in PCM_MASSES_G]
    # Sprint duration grows monotonically with PCM mass.
    assert all(later >= earlier for earlier, later in zip(ordered, ordered[1:]))
    # The paper's two design points: ~1 s at 150 mg, much less at 1.5 mg.
    assert durations[0.150] > 5 * durations[0.0015]

    benchmark.extra_info["sprint_duration_by_mass_g"] = {
        str(m): round(d, 3) for m, d in durations.items()
    }


def test_pcm_melting_point_ablation(run_once, benchmark):
    """Higher melting points shorten the margin to Tmax but speed up cooling."""
    results = run_once(_melting_point_sweep)

    durations = {m: r[0] for m, r in results.items()}
    cooldowns = {m: r[1] for m, r in results.items()}
    # Melting points comfortably below Tmax sustain the full ~1 s sprint.
    assert all(durations[m] > 0.8 for m in (45.0, 55.0, 60.0))
    # A melting point too close to Tmax starves the junction-to-PCM gradient:
    # the maximum sprint power drops below 16 W and the sprint ends early.
    assert durations[65.0] < durations[60.0]
    # Paper Section 4.5: a higher melting point accelerates cooling
    # (larger PCM-to-ambient gradient), so cooldown shrinks monotonically.
    known = [cooldowns[m] for m in MELTING_POINTS_C if cooldowns[m] is not None]
    assert len(known) >= 3
    assert all(later <= earlier * 1.05 for earlier, later in zip(known, known[1:]))

    benchmark.extra_info["sprint_duration_by_melt_c"] = {
        str(m): round(d, 3) for m, d in durations.items()
    }
    benchmark.extra_info["cooldown_by_melt_c"] = {
        str(m): (round(c, 1) if c is not None else None) for m, c in cooldowns.items()
    }
