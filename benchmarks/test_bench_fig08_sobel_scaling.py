"""Figure 8 benchmark: sobel speedup versus input size."""

from repro.experiments import fig08_sobel

#: A reduced sweep (the paper's x-axis spans 2-12 MP) keeps the bench quick.
MEGAPIXELS = (1.0, 2.0, 4.0, 8.0, 12.0)


def test_fig08_sobel_input_scaling(run_once, benchmark):
    """Full PCM sustains 16-core speedup at every size; 1.5 mg falls away."""
    result = run_once(fig08_sobel.run, megapixels=MEGAPIXELS)

    # Paper: with the fully sized PCM the sprint covers every resolution.
    assert result.full_pcm_sustains_all_sizes
    assert min(p.parallel_full_pcm for p in result.points) > 8.0
    # Paper: the artificially limited design drops off as the image grows.
    assert result.small_pcm_drops_off
    assert result.points[-1].small_pcm_truncated
    # DVFS sprinting with 1.5 mg exhausts even sooner than parallel sprinting.
    assert result.points[-1].dvfs_small_pcm < result.points[-1].parallel_small_pcm

    benchmark.extra_info["parallel_150mg"] = {
        p.megapixels: round(p.parallel_full_pcm, 1) for p in result.points
    }
    benchmark.extra_info["parallel_1.5mg"] = {
        p.megapixels: round(p.parallel_small_pcm, 1) for p in result.points
    }
    benchmark.extra_info["dvfs_1.5mg"] = {
        p.megapixels: round(p.dvfs_small_pcm, 1) for p in result.points
    }
