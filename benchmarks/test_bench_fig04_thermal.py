"""Figure 4 benchmark: sprint-initiation and cooldown thermal transients."""

from repro.experiments import fig04_thermal


def test_fig04_sprint_and_cooldown(run_once, benchmark):
    """A 16 W sprint lasts ~1 s with a long melt plateau, then cools in tens of seconds."""
    result = run_once(fig04_thermal.run)

    # Paper: the sprint is sustainable for "a little over 1 s".
    assert 0.8 <= result.max_sprint_duration_s <= 2.0
    # Paper: the junction plateaus for ~0.95 s while the PCM melts.
    assert 0.6 <= result.melt_plateau_s <= 1.5
    # The junction never exceeds the 70 C limit.
    assert result.sprint.trace.peak_junction_c <= 70.5
    # Paper: cooldown to near ambient takes on the order of 24 s.
    assert result.cooldown_to_ambient_s is not None
    assert 8.0 <= result.cooldown_to_ambient_s <= 40.0
    # The paper's rule of thumb (duration x power/TDP) is the right order.
    assert result.paper_cooldown_rule_s > result.max_sprint_duration_s * 5

    benchmark.extra_info["sprint_duration_s"] = round(result.max_sprint_duration_s, 2)
    benchmark.extra_info["melt_plateau_s"] = round(result.melt_plateau_s, 2)
    benchmark.extra_info["cooldown_s"] = round(result.cooldown_to_ambient_s, 1)
