"""Figure 10 benchmark: speedup versus sprint core count (1/4/16/64)."""

from repro.experiments import fig10_cores


def test_fig10_core_count_scaling(run_once, benchmark):
    """kmeans/sobel scale to 64 cores; others hit parallelism or bandwidth walls."""
    result = run_once(fig10_cores.run)

    for row in result.rows:
        # Speedup is monotonically non-decreasing in core count.
        assert all(
            later >= earlier * 0.95
            for earlier, later in zip(row.speedups, row.speedups[1:])
        )
        # Fewer cores extract a higher fraction of peak throughput.
        assert row.speedup_at(4) >= 2.0

    # Paper: kmeans and sobel continue to scale well all the way to 64 cores.
    assert result.by_kernel("kmeans").scales_to_max_cores
    assert result.by_kernel("sobel").scales_to_max_cores
    # Paper: segment and texture are limited by available parallelism.
    assert result.by_kernel("segment").speedup_at(64) < 12.0
    assert result.by_kernel("texture").speedup_at(64) < 14.0
    # Paper: feature and disparity are limited by memory bandwidth, and
    # doubling the per-channel bandwidth lifts both substantially.
    for name in ("feature", "disparity"):
        row = result.by_kernel(name)
        assert row.speedup_at(64) < result.by_kernel("sobel").speedup_at(64)
        assert row.speedup_max_cores_2x_bandwidth > 1.2 * row.speedup_at(64)

    benchmark.extra_info["speedups"] = {
        row.kernel: [round(s, 1) for s in row.speedups] for row in result.rows
    }
    benchmark.extra_info["speedup_64_2x_bandwidth"] = {
        row.kernel: round(row.speedup_max_cores_2x_bandwidth, 1) for row in result.rows
    }
