"""Benchmarks for the fleet simulator and the parallel sweep engine.

Two questions matter for the serving layer's usefulness as a scenario
engine: how many requests per wall-second one fleet simulation sustains,
and how the multiprocessing sweep scales as workers are added.  Both runs
record their throughput in ``benchmark.extra_info`` so the JSON output can
be tracked across commits.
"""

from __future__ import annotations

import time

import pytest

from repro.core.config import SystemConfig
from repro.traffic import (
    FixedService,
    FleetSimulator,
    PoissonArrivals,
    SweepSpec,
    generate_requests,
    run_sweep,
)

FLEET_REQUESTS = 20_000
FLEET_DEVICES = 16

SWEEP_SPEC = SweepSpec(
    policies=("round_robin", "least_loaded", "thermal_aware"),
    arrival_rates_hz=(0.05, 0.1, 0.2, 0.3),
    fleet_sizes=(1, 2, 4),
    n_requests=400,
    service_cv=0.5,
    slo_s=2.0,
    base_seed=5,
)
SWEEP_WORKER_COUNTS = (1, 2, 4)


def test_bench_fleet_throughput(benchmark):
    """Requests simulated per wall-second on one 16-device fleet."""
    config = SystemConfig.paper_default()
    requests = generate_requests(
        PoissonArrivals(1.0), FixedService(5.0), FLEET_REQUESTS, seed=1
    )

    def simulate():
        fleet = FleetSimulator(config, FLEET_DEVICES, policy="least_loaded")
        return fleet.run(requests)

    result = benchmark.pedantic(simulate, rounds=1, iterations=1)
    assert len(result.served) == FLEET_REQUESTS
    elapsed = benchmark.stats.stats.mean
    benchmark.extra_info["requests_per_second"] = FLEET_REQUESTS / elapsed
    benchmark.extra_info["p99_latency_s"] = result.summary().p99_latency_s


def test_bench_sweep_worker_scaling(benchmark):
    """Wall time of the full grid serially, recorded against 2 and 4 workers.

    The benchmark times the serial run; parallel runs are timed manually
    into ``extra_info`` (pytest-benchmark can only time one subject), along
    with the resulting speedups and a correctness check that every worker
    count produced identical results.
    """
    config = SystemConfig.paper_default()

    serial = benchmark.pedantic(
        run_sweep, args=(SWEEP_SPEC, config), kwargs={"workers": 1},
        rounds=1, iterations=1,
    )
    serial_s = benchmark.stats.stats.mean
    cells = len(serial.cells)
    benchmark.extra_info["cells"] = cells
    benchmark.extra_info["serial_cells_per_second"] = cells / serial_s

    for workers in SWEEP_WORKER_COUNTS[1:]:
        started = time.perf_counter()
        parallel = run_sweep(SWEEP_SPEC, config, workers=workers)
        elapsed = time.perf_counter() - started
        assert parallel.cells == serial.cells, "parallel sweep diverged from serial"
        benchmark.extra_info[f"speedup_workers_{workers}"] = serial_s / elapsed

    assert cells == 36


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "--benchmark-only", "-q"]))
