"""Benchmarks for the fleet simulator and the parallel sweep engine.

Three questions matter for the serving layer's usefulness as a scenario
engine: how many requests per wall-second one fleet simulation sustains,
whether dispatch stays cheap as the fleet grows (the indexed
``least_loaded`` path against the O(n) scan it replaced), and how the
multiprocessing sweep scales as workers are added.  Runs record their
throughput in ``benchmark.extra_info`` so the JSON output can be tracked
across commits, and honour ``$REPRO_BENCH_SCALE`` (see ``conftest``) so
CI's smoke step can shrink them.
"""

from __future__ import annotations

import os
import time
from dataclasses import replace

import numpy as np
import pytest

from repro.core.config import SystemConfig
from repro.traffic import (
    DISPATCH_POLICIES,
    DiurnalArrivals,
    FixedService,
    FleetSimulator,
    GammaService,
    GovernorSpec,
    PoissonArrivals,
    SweepSpec,
    TopologySpec,
    generate_requests,
    run_sweep,
)

FLEET_REQUESTS = 20_000
FLEET_DEVICES = 16

LARGE_FLEET_DEVICES = 256
LARGE_FLEET_REQUESTS = 4_000

SWEEP_SPEC = SweepSpec(
    policies=("round_robin", "least_loaded", "thermal_aware"),
    arrival_rates_hz=(0.05, 0.1, 0.2, 0.3),
    fleet_sizes=(1, 2, 4),
    n_requests=400,
    service_cv=0.5,
    slo_s=2.0,
    base_seed=5,
)
SWEEP_WORKER_COUNTS = (1, 2, 4)

SHARD_FLEET_SIZES = (10_000, 100_000)
SHARD_WORKER_COUNTS = (1, 2, 4, 8)
SHARD_REQUESTS = 100_000


def test_bench_fleet_throughput(benchmark, bench_scale):
    """Requests simulated per wall-second on one 16-device fleet."""
    config = SystemConfig.paper_default()
    n = bench_scale(FLEET_REQUESTS, floor=500)
    requests = generate_requests(
        PoissonArrivals(1.0), FixedService(5.0), n, seed=1
    )

    def simulate():
        fleet = FleetSimulator(config, FLEET_DEVICES, policy="least_loaded")
        return fleet.run(requests)

    result = benchmark.pedantic(simulate, rounds=1, iterations=1)
    assert len(result.served) == n
    elapsed = benchmark.stats.stats.mean
    benchmark.extra_info["requests_per_second"] = n / elapsed
    benchmark.extra_info["p99_latency_s"] = result.summary().p99_latency_s


def test_bench_large_fleet_dispatch(benchmark, bench_scale):
    """Indexed ``least_loaded`` dispatch against the O(n) scan at 256 devices.

    The named policy runs on the engine's heap index; passing the policy
    *function* forces the legacy per-request scan over every device.  The
    two are order-equivalent (asserted bit-identically), so the speedup is
    pure dispatch cost.
    """
    config = SystemConfig.paper_default()
    n = bench_scale(LARGE_FLEET_REQUESTS, floor=300)
    requests = generate_requests(
        PoissonArrivals(50.0), FixedService(5.0), n, seed=3
    )

    def indexed():
        fleet = FleetSimulator(config, LARGE_FLEET_DEVICES, policy="least_loaded")
        return fleet.run(requests)

    result = benchmark.pedantic(indexed, rounds=1, iterations=1)
    indexed_s = benchmark.stats.stats.mean

    started = time.perf_counter()
    scan_result = FleetSimulator(
        config, LARGE_FLEET_DEVICES, policy=DISPATCH_POLICIES["least_loaded"]
    ).run(requests)
    scan_s = time.perf_counter() - started

    assert np.array_equal(result.latencies_s, scan_result.latencies_s)
    assert [s.device_id for s in result.served] == [
        s.device_id for s in scan_result.served
    ]
    benchmark.extra_info["devices"] = LARGE_FLEET_DEVICES
    benchmark.extra_info["indexed_requests_per_second"] = n / indexed_s
    benchmark.extra_info["scan_requests_per_second"] = n / scan_s
    benchmark.extra_info["speedup_vs_scan"] = scan_s / indexed_s
    assert indexed_s < scan_s, (
        f"indexed dispatch ({indexed_s:.3f}s) should beat the O(n) scan "
        f"({scan_s:.3f}s) on a {LARGE_FLEET_DEVICES}-device fleet"
    )


def test_bench_governed_fleet_overhead(benchmark, bench_scale):
    """Grant-handshake cost of a power-governed fleet against unlimited.

    A governed run adds one acquire per sprint attempt and one release
    event per sprint to the event heap; the benchmark times a greedy-
    governed fleet and records the ungoverned run for the overhead ratio.
    The ``unlimited`` governor must not appear here at all — it takes the
    ungoverned code path, which the regression tests lock bit-identically.
    """
    config = SystemConfig.paper_default()
    n = bench_scale(FLEET_REQUESTS, floor=500)
    requests = generate_requests(PoissonArrivals(1.0), FixedService(5.0), n, seed=1)
    governor = GovernorSpec.greedy(FLEET_DEVICES // 2)

    def governed():
        fleet = FleetSimulator(config, FLEET_DEVICES, governor=governor)
        return fleet.run(requests)

    result = benchmark.pedantic(governed, rounds=1, iterations=1)
    governed_s = benchmark.stats.stats.mean

    started = time.perf_counter()
    unlimited_result = FleetSimulator(config, FLEET_DEVICES).run(requests)
    unlimited_s = time.perf_counter() - started

    stats = result.governor_stats
    assert stats is not None
    assert stats.sprints_granted - stats.grants_released_unused == sum(
        1 for s in result.served if s.sprinted
    )
    assert len(result.served) == len(unlimited_result.served) == n
    overhead = governed_s / unlimited_s
    benchmark.extra_info["governed_requests_per_second"] = n / governed_s
    benchmark.extra_info["unlimited_requests_per_second"] = n / unlimited_s
    benchmark.extra_info["overhead_vs_unlimited"] = overhead
    benchmark.extra_info["sprints_denied"] = stats.sprints_denied
    assert overhead < 3.0, (
        f"governed dispatch ({governed_s:.3f}s) should stay within 3x of the "
        f"ungoverned run ({unlimited_s:.3f}s); measured {overhead:.2f}x"
    )


def test_bench_thermal_backend_overhead(benchmark, bench_scale):
    """Per-request cost of each thermal backend (reservoir vs RC vs PCM).

    The linear reservoir is the regression-locked default; the physics
    backends add per-drain exponentials (rc) or piecewise enthalpy
    integration (pcm).  The benchmark times the linear fleet and records
    each backend's throughput and overhead ratio in ``extra_info`` for the
    ``BENCH_ci.json`` artifact; the assertion keeps the physics backends
    within a small constant factor, so fidelity never becomes a scaling
    hazard.
    """
    config = SystemConfig.paper_default()
    n = bench_scale(FLEET_REQUESTS, floor=500)
    requests = generate_requests(PoissonArrivals(1.0), FixedService(5.0), n, seed=1)

    def run_backend(thermal: str):
        fleet = FleetSimulator(config, FLEET_DEVICES, thermal=thermal)
        return fleet.run(requests)

    result = benchmark.pedantic(run_backend, args=("linear",), rounds=3, iterations=1)
    assert len(result.served) == n
    # Compare minima, not single shots: one GC pause or noisy-neighbour
    # stall in either measurement must not fail the CI gate.
    linear_s = benchmark.stats.stats.min
    benchmark.extra_info["linear_requests_per_second"] = n / linear_s

    for backend in ("rc", "pcm"):
        elapsed = float("inf")
        for _ in range(3):
            started = time.perf_counter()
            backend_result = run_backend(backend)
            elapsed = min(elapsed, time.perf_counter() - started)
            assert len(backend_result.served) == n
        overhead = elapsed / linear_s
        benchmark.extra_info[f"{backend}_requests_per_second"] = n / elapsed
        benchmark.extra_info[f"{backend}_overhead_vs_linear"] = overhead
        assert overhead < 3.0, (
            f"{backend} backend ({elapsed:.3f}s) should stay within 3x of the "
            f"linear reservoir ({linear_s:.3f}s); measured {overhead:.2f}x"
        )


def test_bench_telemetry_overhead(benchmark, bench_scale):
    """Streaming-telemetry cost against the sample-backed baseline.

    Three modes share one request stream: the legacy sample-keeping run
    (timed as the benchmark subject), the flat-memory sketch run
    (``keep_samples=False``), and the counts-only run with every
    instrument off.  The sketch path must stay within a small constant
    factor of the baseline — otherwise flat memory would cost the very
    throughput long horizons need — and its tail estimates must agree
    with the exact ones within the documented rank-error bound.
    """
    from repro.traffic import TelemetrySpec

    config = SystemConfig.paper_default()
    n = bench_scale(FLEET_REQUESTS, floor=500)
    requests = generate_requests(PoissonArrivals(1.0), FixedService(5.0), n, seed=1)

    def run_mode(**kwargs):
        fleet = FleetSimulator(config, FLEET_DEVICES, **kwargs)
        return fleet.run(requests)

    result = benchmark.pedantic(run_mode, rounds=3, iterations=1)
    assert len(result.served) == n
    baseline_s = benchmark.stats.stats.min
    benchmark.extra_info["samples_requests_per_second"] = n / baseline_s

    modes = {
        "sketch": dict(keep_samples=False),
        "instruments_off": dict(keep_samples=False, telemetry=False),
        "fully_instrumented": dict(
            keep_samples=False,
            telemetry=TelemetrySpec(timeline_cadence_s=60.0, trace_capacity=4096),
        ),
    }
    exact_summary = result.summary()
    for name, kwargs in modes.items():
        elapsed = float("inf")
        for _ in range(3):
            started = time.perf_counter()
            mode_result = run_mode(**kwargs)
            elapsed = min(elapsed, time.perf_counter() - started)
        assert mode_result.served_count == n
        assert mode_result.served == ()
        overhead = elapsed / baseline_s
        benchmark.extra_info[f"{name}_requests_per_second"] = n / elapsed
        benchmark.extra_info[f"{name}_overhead_vs_samples"] = overhead
        assert overhead < 2.5, (
            f"{name} mode ({elapsed:.3f}s) should stay within 2.5x of the "
            f"sample-backed run ({baseline_s:.3f}s); measured {overhead:.2f}x"
        )
        if name != "instruments_off":
            sketch_summary = mode_result.summary()
            assert sketch_summary.request_count == exact_summary.request_count
            latencies = np.sort(result.latencies_s)
            rank = np.searchsorted(
                latencies, sketch_summary.p99_latency_s, side="right"
            ) / n
            assert abs(rank - 0.99) <= sketch_summary.sketch_rank_error + 1.0 / n


ENGINE_CURVE_DEVICES = 256
ENGINE_CURVE_SCALES = (100_000, 1_000_000, 10_000_000)
ENGINE_CURVE_RATE_HZ = 50.0


def test_bench_engine_throughput_curve(benchmark, bench_scale):
    """Requests/second of exact vs batched vs fluid across stream sizes.

    One 256-device round-robin fleet serves Poisson/fixed-demand streams
    of 1e5, 1e6, and 1e7 requests with ``keep_samples=False`` (flat
    memory).  The exact event loop is measured once at the smallest size
    (its per-request cost is size-independent; simulating 1e7 requests
    scalar-wise would dominate the whole suite), the batched vector core
    and the fluid limit at every size.  The full curve lands in
    ``extra_info`` for the ``BENCH_ci.json`` artifact, and the gate
    asserts the batched path beats the exact loop — the fast path must
    never regress into a slow path.
    """
    config = SystemConfig.paper_default()
    scales = [bench_scale(n, floor=2_000) for n in ENGINE_CURVE_SCALES]
    arrivals = PoissonArrivals(ENGINE_CURVE_RATE_HZ)
    service = FixedService(5.0)

    def fleet(mode: str, engine: str) -> FleetSimulator:
        return FleetSimulator(
            config,
            ENGINE_CURVE_DEVICES,
            policy="round_robin",
            mode=mode,
            keep_samples=False,
            telemetry=False,
            engine=engine,
        )

    def run(mode: str, engine: str, n: int):
        return fleet(mode, engine).run_stream(
            arrivals, service, n, request_seed=9, run_seed=9
        )

    # Benchmark subject: the batched vector core at the smallest size
    # (each curve point below is timed manually into extra_info).
    result = benchmark.pedantic(
        run, args=("immediate", "batched", scales[0]), rounds=1, iterations=1
    )
    assert result.served_count == scales[0]
    batched_small_s = benchmark.stats.stats.mean

    started = time.perf_counter()
    exact_result = run("immediate", "exact", scales[0])
    exact_s = time.perf_counter() - started
    assert exact_result.served_count == scales[0]

    curve: dict[str, float] = {
        f"exact_rps_{scales[0]}": scales[0] / exact_s,
        f"batched_rps_{scales[0]}": scales[0] / batched_small_s,
    }
    for n in scales[1:]:
        started = time.perf_counter()
        assert run("immediate", "batched", n).served_count == n
        curve[f"batched_rps_{n}"] = n / (time.perf_counter() - started)
    for n in scales:
        started = time.perf_counter()
        assert run("fluid", "exact", n).served_count == n
        curve[f"fluid_rps_{n}"] = n / (time.perf_counter() - started)

    speedup = exact_s / batched_small_s
    benchmark.extra_info["devices"] = ENGINE_CURVE_DEVICES
    benchmark.extra_info["batched_speedup_vs_exact"] = speedup
    benchmark.extra_info.update(curve)
    assert speedup > 1.0, (
        f"batched engine ({batched_small_s:.3f}s) must beat the exact loop "
        f"({exact_s:.3f}s) at {scales[0]} requests on "
        f"{ENGINE_CURVE_DEVICES} devices; measured {speedup:.2f}x"
    )
    if os.environ.get("REPRO_BENCH_SCALE", "1.0") == "1.0":
        # At full scale the vector core's amortisation is complete; hold
        # the headline order-of-magnitude win, not just parity.
        assert speedup >= 10.0, (
            f"batched engine speedup degraded to {speedup:.1f}x "
            "(expected >= 10x at full scale)"
        )


GOVERNED_CURVE_SCALES = (100_000, 1_000_000)


def test_bench_governed_central_throughput(benchmark, bench_scale):
    """Exact vs batched on the widened envelope: 256 governed devices
    behind a central FIFO queue with streaming telemetry on.

    The original fast path covered only ungoverned immediate dispatch;
    this curve measures the batch-replay event core on the issue's
    headline scenario — greedy-governed sprints, central-queue FIFO,
    sketch telemetry — at 1e5 and 1e6 requests with flat memory.  The
    exact loop is measured at the smallest size (its per-request cost is
    size-independent), and the smallest-size runs are checked
    bit-identical (summary, grant ledger, sketch quantiles) before any
    timing is trusted.  ``governed_central_speedup_vs_exact`` is the
    amortised ratio — the batched core's best requests/second across the
    curve against the exact loop's — because that is the number the
    largest-scale point pays for; every timing is a min-of-2 so one GC
    pause or noisy neighbour cannot fail the CI gate, which holds the
    ratio to >= 5x.
    """
    config = SystemConfig.paper_default()
    scales = [bench_scale(n, floor=2_000) for n in GOVERNED_CURVE_SCALES]
    arrivals = PoissonArrivals(ENGINE_CURVE_RATE_HZ)
    service = FixedService(5.0)
    governor = GovernorSpec.greedy(ENGINE_CURVE_DEVICES // 4)

    def run(engine: str, n: int):
        fleet = FleetSimulator(
            config,
            ENGINE_CURVE_DEVICES,
            policy="round_robin",
            mode="central_queue",
            governor=governor,
            keep_samples=False,
            telemetry=True,
            engine=engine,
        )
        return fleet.run_stream(arrivals, service, n, request_seed=9, run_seed=9)

    result = benchmark.pedantic(
        run, args=("batched", scales[0]), rounds=2, iterations=1
    )
    assert result.fast_path, result.fast_path_reason
    assert result.served_count == scales[0]
    batched_small_s = benchmark.stats.stats.min

    exact_s = float("inf")
    for _ in range(2):
        started = time.perf_counter()
        exact_result = run("exact", scales[0])
        exact_s = min(exact_s, time.perf_counter() - started)

    assert exact_result.summary() == result.summary()
    assert exact_result.governor_stats == result.governor_stats
    for q in (0.5, 0.9, 0.99):
        assert exact_result.telemetry.stream.latency.quantile(
            q
        ) == result.telemetry.stream.latency.quantile(q)

    curve = {
        f"exact_rps_{scales[0]}": scales[0] / exact_s,
        f"batched_rps_{scales[0]}": scales[0] / batched_small_s,
    }
    for n in scales[1:]:
        elapsed = float("inf")
        for _ in range(2):
            started = time.perf_counter()
            assert run("batched", n).served_count == n
            elapsed = min(elapsed, time.perf_counter() - started)
        curve[f"batched_rps_{n}"] = n / elapsed

    exact_rps = curve[f"exact_rps_{scales[0]}"]
    speedup = max(v for k, v in curve.items() if k.startswith("batched_")) / exact_rps
    benchmark.extra_info["devices"] = ENGINE_CURVE_DEVICES
    benchmark.extra_info["governed_central_speedup_vs_exact"] = speedup
    benchmark.extra_info.update(curve)
    assert speedup > 1.0, (
        f"batch-replay core must beat the exact loop ({exact_rps:.0f} rps) "
        f"on the governed central-queue scenario; measured {speedup:.2f}x"
    )
    if os.environ.get("REPRO_BENCH_SCALE", "1.0") == "1.0":
        assert speedup >= 5.0, (
            f"governed central-queue speedup degraded to {speedup:.1f}x "
            "(expected >= 5x at full scale)"
        )


def test_bench_sweep_worker_scaling(benchmark, bench_scale):
    """Wall time of the full grid serially, recorded against 2 and 4 workers.

    The benchmark times the serial run; parallel runs are timed manually
    into ``extra_info`` (pytest-benchmark can only time one subject), along
    with the resulting speedups and a correctness check that every worker
    count produced identical results.
    """
    config = SystemConfig.paper_default()
    spec = replace(SWEEP_SPEC, n_requests=bench_scale(SWEEP_SPEC.n_requests, floor=50))

    serial = benchmark.pedantic(
        run_sweep, args=(spec, config), kwargs={"workers": 1},
        rounds=1, iterations=1,
    )
    serial_s = benchmark.stats.stats.mean
    cells = len(serial.cells)
    benchmark.extra_info["cells"] = cells
    benchmark.extra_info["serial_cells_per_second"] = cells / serial_s

    for workers in SWEEP_WORKER_COUNTS[1:]:
        started = time.perf_counter()
        parallel = run_sweep(spec, config, workers=workers)
        elapsed = time.perf_counter() - started
        assert parallel.cells == serial.cells, "parallel sweep diverged from serial"
        benchmark.extra_info[f"speedup_workers_{workers}"] = serial_s / elapsed

    assert cells == 36


def _shard_topology(n_devices: int) -> TopologySpec:
    """A 10-row x 10-rack datacenter with governed budgets at every level."""
    per_rack = max(1, n_devices // 100)
    return TopologySpec.uniform(
        10,
        10,
        per_rack,
        rack_governor=GovernorSpec.greedy(max(1, per_rack // 4)),
        row_governor=GovernorSpec.greedy(max(1, 10 * per_rack // 4)),
        window_s=60.0,
    )


def test_bench_shard_worker_scaling(benchmark, bench_scale):
    """Sharded datacenter runs under diurnal load: 1/2/4/8 workers at 10k
    and 100k devices.

    The benchmark times the 100k-device serial (1-worker) run — the
    acceptance-scale datacenter simulation — and records every other
    (fleet size, worker count) wall time and throughput into
    ``extra_info``.  At each size it asserts the shard-count invariance
    contract: worker count is a speed knob, not a physics knob, so every
    worker count must produce a bit-identical summary.  Speedups are
    recorded, not asserted — at light per-rack load the fan-out's job
    pickling can dominate, and that honesty is part of the record.
    """
    config = SystemConfig.paper_default()
    n = bench_scale(SHARD_REQUESTS, floor=2_000)
    arrivals = DiurnalArrivals(base_rate_hz=200.0, amplitude=0.8, period_s=600.0)
    requests = generate_requests(arrivals, GammaService(5.0, 0.5), n, seed=3)

    sizes = [bench_scale(size, floor=400) for size in SHARD_FLEET_SIZES]
    headline_size = sizes[-1]

    def run(n_devices, workers):
        topo = _shard_topology(n_devices)
        fleet = FleetSimulator(config, topology=topo, shard_workers=workers)
        return fleet.run(requests)

    headline = benchmark.pedantic(
        run, args=(headline_size, 1), rounds=1, iterations=1
    )
    headline_s = benchmark.stats.stats.mean
    summaries = {(headline_size, 1): headline.summary(slo_s=2.0).to_dict()}
    benchmark.extra_info["requests"] = n
    benchmark.extra_info[f"devices_{headline_size}_workers_1_rps"] = n / headline_s

    for size in sizes:
        serial_s = headline_s if size == headline_size else None
        for workers in SHARD_WORKER_COUNTS:
            if (size, workers) in summaries:
                continue
            started = time.perf_counter()
            result = run(size, workers)
            elapsed = time.perf_counter() - started
            summaries[(size, workers)] = result.summary(slo_s=2.0).to_dict()
            if workers == 1:
                serial_s = elapsed
            benchmark.extra_info[f"devices_{size}_workers_{workers}_rps"] = n / elapsed
            if serial_s is not None and workers > 1:
                benchmark.extra_info[
                    f"devices_{size}_speedup_workers_{workers}"
                ] = serial_s / elapsed
        reference = summaries[(size, 1)]
        for workers in SHARD_WORKER_COUNTS[1:]:
            assert summaries[(size, workers)] == reference, (
                f"{size}-device run diverged at {workers} workers: shard "
                "count changed the physics"
            )
        # The governed cascade actually bit in this run, at every size.
        assert reference["request_count"] == n


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "--benchmark-only", "-q"]))
