"""Sections 4.1-4.3 benchmark: heat-store sizing and heat flux."""

from repro.experiments import sec4_sizing


def test_sec4_heat_store_sizing(run_once, benchmark):
    """The sizing calculations reproduce the paper's design numbers."""
    result = run_once(sec4_sizing.run)

    # 16 joules for a 16 W, 1 s sprint.
    assert result.sprint_heat_j == 16.0
    # Section 4.1: 7.2 mm of copper or 10.3 mm of aluminium for a 10 C rise.
    assert result.within_percent(result.copper_thickness_mm, result.paper_copper_mm)
    assert result.within_percent(
        result.aluminium_thickness_mm, result.paper_aluminium_mm
    )
    # Section 4.2: ~150 mg / ~2.3 mm of PCM at 100 J/g.
    assert result.within_percent(result.pcm_mass_g, result.paper_pcm_mass_g)
    assert result.within_percent(
        result.pcm_thickness_mm, result.paper_pcm_thickness_mm, tolerance=20.0
    )
    # Section 4.3: 25 W/cm^2 peak heat flux.
    assert abs(result.peak_heat_flux_w_cm2 - 25.0) < 0.5
    # Aluminium stores less heat per volume, so it must be thicker than copper.
    assert result.aluminium_thickness_mm > result.copper_thickness_mm
    # The PCM achieves the same storage in a far thinner layer.
    assert result.pcm_thickness_mm < 0.5 * result.copper_thickness_mm

    benchmark.extra_info["copper_mm"] = round(result.copper_thickness_mm, 2)
    benchmark.extra_info["aluminium_mm"] = round(result.aluminium_thickness_mm, 2)
    benchmark.extra_info["pcm_mass_g"] = round(result.pcm_mass_g, 3)
    benchmark.extra_info["heat_flux_w_cm2"] = round(result.peak_heat_flux_w_cm2, 1)
