"""Figure 11 benchmark: normalised dynamic energy versus core count."""

from repro.experiments import fig11_energy


def test_fig11_dynamic_energy(run_once, benchmark):
    """Parallel sprinting is near energy-neutral at 16 cores; DVFS costs ~6x."""
    result = run_once(fig11_energy.run)

    # Paper: on 16 cores the average overhead is ~12%.
    assert result.average_overhead_at(16) < 1.25
    # Paper: overheads grow beyond 16 cores, up to ~1.8x at 64.
    assert result.average_overhead_at(64) > result.average_overhead_at(16)
    assert max(row.energy_at(64) for row in result.rows) <= 2.5

    for row in result.rows:
        # Energy in the linear-scaling regime matches single-core energy.
        assert 0.95 <= row.energy_at(4) <= 1.15
        # Paper Section 8.6: voltage boosting costs roughly 6x more energy.
        assert 4.0 <= row.dvfs_energy_ratio <= 8.0

    # At least four of the six kernels stay within ~10% at 16 cores.
    within_ten_percent = [row for row in result.rows if row.energy_at(16) <= 1.12]
    assert len(within_ten_percent) >= 4

    benchmark.extra_info["normalized_energy"] = {
        row.kernel: [round(e, 2) for e in row.normalized_energy] for row in result.rows
    }
    benchmark.extra_info["dvfs_energy_ratio"] = {
        row.kernel: round(row.dvfs_energy_ratio, 1) for row in result.rows
    }
