"""Figure 7 benchmark: 16-core parallel sprint vs DVFS sprint, both PCM sizes."""

from repro.experiments import fig07_speedup


def test_fig07_parallel_vs_dvfs_sprinting(run_once, benchmark):
    """Parallel sprinting delivers order-of-magnitude responsiveness; DVFS cannot."""
    result = run_once(fig07_speedup.run)

    # Paper headline: ~10.2x average speedup with the full 150 mg PCM.
    assert 7.0 <= result.average_parallel_full_pcm <= 14.0
    # The constrained 1.5 mg design truncates sprints and loses speedup.
    assert result.average_parallel_small_pcm < result.average_parallel_full_pcm
    # DVFS sprinting is capped near the cube-root bound (~2.5x), far below parallel.
    assert result.average_dvfs_full_pcm < 3.0
    assert result.average_parallel_full_pcm > 3.0 * result.average_dvfs_full_pcm

    for row in result.rows:
        # Every kernel benefits from parallel sprinting.
        assert row.parallel_full_pcm > 2.0
        # The small-PCM configuration never beats the full one.
        assert row.parallel_small_pcm <= row.parallel_full_pcm * 1.05
        # DVFS can never exceed its analytic bound by more than noise.
        assert row.dvfs_full_pcm <= row.dvfs_ideal_bound * 1.1

    benchmark.extra_info["parallel_150mg"] = {
        r.kernel: round(r.parallel_full_pcm, 1) for r in result.rows
    }
    benchmark.extra_info["parallel_1.5mg"] = {
        r.kernel: round(r.parallel_small_pcm, 1) for r in result.rows
    }
    benchmark.extra_info["dvfs_150mg"] = {
        r.kernel: round(r.dvfs_full_pcm, 1) for r in result.rows
    }
    benchmark.extra_info["average_parallel_150mg"] = round(
        result.average_parallel_full_pcm, 2
    )
