"""Ablation benchmark: energy-based budget estimator vs temperature oracle.

Section 7 proposes estimating the remaining sprint budget from dissipated
energy.  This ablation compares that estimator against an oracle that reads
the junction temperature directly: the oracle extracts the longest safe
sprint, and the energy-based scheme should land close without exceeding the
thermal limit.
"""

from repro.core.budget import EnergyBudgetEstimator, OracleBudgetEstimator
from repro.core.config import SystemConfig
from repro.core.simulation import SprintSimulation
from repro.workloads.suite import kernel_suite


def _run_both_estimators():
    workload = kernel_suite()["kmeans"].workload("C")
    config = SystemConfig.small_pcm()
    simulation = SprintSimulation(config)
    energy_result = simulation.run(
        workload, budget=EnergyBudgetEstimator(config.package)
    )
    oracle_result = simulation.run(
        workload, budget=OracleBudgetEstimator(config.package)
    )
    baseline = simulation.run_baseline(workload, quantum_s=2e-3)
    return energy_result, oracle_result, baseline


def test_budget_estimator_ablation(run_once, benchmark):
    """The energy-based estimator is safe and close to the temperature oracle."""
    energy_result, oracle_result, baseline = run_once(_run_both_estimators)

    # Both estimators keep the junction at or below the limit (plus at most
    # one quantum of overshoot).
    assert energy_result.peak_junction_c < 72.0
    assert oracle_result.peak_junction_c < 72.0
    # Both truncate the sprint on the constrained package.
    assert energy_result.sprint_was_truncated
    assert oracle_result.sprint_was_truncated
    # The oracle can never do worse than the conservative energy estimate by
    # a large margin, and the energy estimator keeps most of its benefit.
    energy_speedup = energy_result.speedup_over(baseline)
    oracle_speedup = oracle_result.speedup_over(baseline)
    assert energy_speedup > 1.0
    assert oracle_speedup > 1.0
    assert energy_speedup >= 0.5 * oracle_speedup

    benchmark.extra_info["energy_estimator_speedup"] = round(energy_speedup, 2)
    benchmark.extra_info["oracle_speedup"] = round(oracle_speedup, 2)
    benchmark.extra_info["energy_sprint_s"] = round(
        energy_result.sprint_duration_s, 3
    )
    benchmark.extra_info["oracle_sprint_s"] = round(
        oracle_result.sprint_duration_s, 3
    )
