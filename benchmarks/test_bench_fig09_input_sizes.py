"""Figure 9 benchmark: 16-core speedup across input classes A-D."""

from repro.experiments import fig09_inputs


def test_fig09_input_size_classes(run_once, benchmark):
    """Bigger inputs speed up at least as well but need more thermal capacitance."""
    result = run_once(fig09_inputs.run)

    kernels = {p.kernel for p in result.points}
    assert kernels == {"sobel", "feature", "kmeans", "disparity", "texture", "segment"}

    for kernel in sorted(kernels):
        series = result.kernel_series(kernel)
        # Figure 9 plots at least three input classes per kernel.
        assert len(series) >= 3
        # Full-PCM speedup does not collapse for larger inputs.
        assert result.speedup_grows_with_input(kernel)
        # The constrained design never beats the fully provisioned one.
        for point in series:
            assert point.parallel_small_pcm <= point.parallel_full_pcm * 1.05

    # The largest inputs of the heavier kernels truncate the 1.5 mg sprint.
    truncated = [p for p in result.points if p.small_pcm_truncated]
    assert len(truncated) >= 4

    benchmark.extra_info["full_pcm"] = {
        f"{p.kernel}-{p.input_label}": round(p.parallel_full_pcm, 1)
        for p in result.points
    }
    benchmark.extra_info["small_pcm"] = {
        f"{p.kernel}-{p.input_label}": round(p.parallel_small_pcm, 1)
        for p in result.points
    }
