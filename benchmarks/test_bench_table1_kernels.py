"""Table 1 benchmark: the six-kernel workload suite."""

from repro.experiments import table1_kernels


def test_table1_kernel_suite(run_once, benchmark):
    """All six kernels characterise to multi-second single-core tasks."""
    result = run_once(table1_kernels.run)

    assert result.names == (
        "sobel",
        "feature",
        "kmeans",
        "disparity",
        "texture",
        "segment",
    )
    for row in result.rows:
        # Tasks are in the "seconds on one core" regime the paper targets.
        assert 0.5 <= row.single_core_estimate_s <= 20.0
        assert 0.0 < row.memory_fraction < 0.8
        assert 0.9 <= row.parallel_fraction <= 1.0
        assert row.max_parallelism >= 8

    benchmark.extra_info["single_core_seconds"] = {
        row.name: round(row.single_core_estimate_s, 2) for row in result.rows
    }
    benchmark.extra_info["instructions_millions"] = {
        row.name: round(row.total_instructions / 1e6) for row in result.rows
    }
