"""Figure 1 benchmark: dark-silicon and power-density projections."""

from repro.experiments import fig01_trends


def test_fig01_trends(run_once, benchmark):
    """Power density grows and dark silicon dominates by the 6 nm node."""
    result = run_once(fig01_trends.run)

    for series in result.series:
        # Power density grows monotonically with each generation.
        assert all(
            later >= earlier
            for earlier, later in zip(series.power_density, series.power_density[1:])
        )
        # The dark fraction also grows and becomes the majority of the chip.
        assert series.dark_percent[0] == 0.0
        assert series.dark_percent[-1] > 50.0

    pessimistic = result.by_scenario("ITRS + Borkar Vdd scaling")
    optimistic = result.by_scenario("ITRS")
    # The combined-worst-case curve of the paper is the steepest.
    assert pessimistic.dark_percent[-1] >= optimistic.dark_percent[-1]

    benchmark.extra_info["dark_percent_at_6nm"] = {
        s.scenario: round(s.dark_percent[-1], 1) for s in result.series
    }
    benchmark.extra_info["power_density_at_6nm"] = {
        s.scenario: round(s.power_density[-1], 2) for s in result.series
    }
